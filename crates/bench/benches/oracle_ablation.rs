//! Ablation bench (BENCH_PR3.json): the hop-distance oracle against the
//! closed-form fallback (`Machine::without_oracle`).
//!
//! Two views, both over the same Figure-6 style workload:
//!
//! 1. **Metric kernel** — sum `Machine::distance` over the exact multiset
//!    of rank pairs the radius-4 NFI scan visits. This isolates what the
//!    oracle changes: the per-pair virtual dispatch + `node_of_rank`
//!    indirection collapse to one row load. The BENCH_PR3 ≥2× claim is
//!    measured here.
//! 2. **End to end** — the full `nfi_acd` + `ffi_acd_with_tree` calls,
//!    where cell-map probing and pair enumeration dominate; the oracle's
//!    effect is correspondingly smaller. Reported for honesty.
//!
//! Both configurations produce bit-identical values — asserted before
//! timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;

const RADIUS: i64 = 4;

/// The rank pairs whose hop distances the radius-4 Chebyshev NFI scan
/// sums: every ordered particle pair within the neighborhood that lands on
/// two different ranks.
fn nfi_pair_stream(asg: &Assignment) -> Vec<(u32, u32)> {
    let particles = asg.particles();
    let mut pairs = Vec::new();
    for (i, p) in particles.iter().enumerate() {
        for (j, q) in particles.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = (p.x as i64 - q.x as i64).abs();
            let dy = (p.y as i64 - q.y as i64).abs();
            if dx.max(dy) <= RADIUS {
                let (a, b) = (asg.rank_of_index(i), asg.rank_of_index(j));
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
    }
    pairs
}

fn bench_oracle_ablation(c: &mut Criterion) {
    let workload = Workload::figure6(1).scaled_down(4);
    let procs = 1024u64;
    let particles = workload.particles(0);
    let asg = Assignment::new(&particles, workload.grid_order, CurveKind::Hilbert, procs);
    let tree = OwnerTree::build(&asg);
    let pairs = nfi_pair_stream(&asg);

    for topo in [TopologyKind::Torus, TopologyKind::Quadtree] {
        let cached = Machine::new(topo, procs, CurveKind::Hilbert);
        let fallback = Machine::new(topo, procs, CurveKind::Hilbert).without_oracle();
        assert!(cached.has_oracle() && !fallback.has_oracle());

        // The guarantee BENCH_PR3.json cites: identical values either way.
        assert_eq!(
            pairs.iter().map(|&(a, b)| cached.distance(a, b)).sum::<u64>(),
            pairs.iter().map(|&(a, b)| fallback.distance(a, b)).sum::<u64>(),
        );
        assert_eq!(
            nfi_acd(&asg, &cached, RADIUS as u32, Norm::Chebyshev),
            nfi_acd(&asg, &fallback, RADIUS as u32, Norm::Chebyshev),
        );
        assert_eq!(
            ffi_acd_with_tree(&asg, &cached, &tree),
            ffi_acd_with_tree(&asg, &fallback, &tree),
        );

        let kernel_name = format!("distance_kernel_{}", topo.name());
        let mut kernel = c.benchmark_group(&kernel_name);
        kernel.sample_size(20);
        for (label, machine) in [("oracle_on", &cached), ("oracle_off", &fallback)] {
            kernel.bench_function(label, |b| {
                b.iter(|| {
                    pairs
                        .iter()
                        .map(|&(a, b)| machine.distance(black_box(a), b))
                        .sum::<u64>()
                })
            });
        }
        kernel.finish();

        let e2e_name = format!("end_to_end_{}", topo.name());
        let mut e2e = c.benchmark_group(&e2e_name);
        e2e.sample_size(15);
        for (label, machine) in [("oracle_on", &cached), ("oracle_off", &fallback)] {
            e2e.bench_function(label, |b| {
                b.iter(|| {
                    let nfi = nfi_acd(&asg, machine, RADIUS as u32, Norm::Chebyshev).unwrap();
                    let ffi = ffi_acd_with_tree(&asg, machine, &tree).unwrap();
                    nfi.acd() + ffi.acd()
                })
            });
        }
        e2e.finish();
    }
}

criterion_group!(benches, bench_oracle_ablation);
criterion_main!(benches);
