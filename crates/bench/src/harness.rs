//! Glue between [`SweepArgs`] and the fault-tolerant [`SweepRunner`] —
//! and the one `main` all seven regeneration binaries share.
//!
//! Every binary is a thin shell around [`run_artifact`]: parse flags, build
//! the canonical [`ExperimentSpec`], consult the optional `--cache`
//! directory, and only on a miss construct a runner and compute. The
//! journaling, retry, time-budget and chaos flags behave identically across
//! binaries, and the sweep accounting goes to **stderr** — stdout and the
//! JSON artifact stay byte-identical between a fresh run, a resumed one,
//! and a cache replay.

use crate::args::SweepArgs;
use crate::artifact::{compute, ArtifactOutput, ComputeOpts};
use serde_json::{json, ToJson, Value};
use sfc_core::runner::{ChaosInjector, RunnerOptions, SweepRunner, SweepSummary};
use sfc_core::{
    ArtifactKind, Assignment, CachedArtifact, ExperimentSpec, Machine, ResultCache, TraceSink,
};
use sfc_curves::{CurveKind, Point2};
use sfc_topology::TopologyKind;
use std::path::PathBuf;
use std::time::Duration;

/// The shared error-kind taxonomy of the serving path (`sfc-serve`, its
/// client, and anything else that answers requests with typed failures).
/// Every `ok: false` response names one of these kinds so callers can
/// decide mechanically whether to retry.
pub mod error_kind {
    /// Malformed or invalid request — retrying the same bytes cannot help.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The computation panicked; the daemon contained it and keeps serving.
    /// Deterministic chaos aside, a re-request computes cleanly.
    pub const COMPUTE_PANIC: &str = "compute_panic";
    /// The request's deadline expired before an answer was ready.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Admission control refused the request; the response carries a
    /// `retry_after_ms` hint.
    pub const OVERLOADED: &str = "overloaded";
    /// The daemon is draining (SIGTERM or `shutdown`): it answers what it
    /// already accepted but takes no new work.
    pub const DRAINING: &str = "draining";
    /// The connection died or timed out mid-exchange (client-synthesized —
    /// the daemon never got to answer, or its answer was cut off).
    pub const TRANSPORT: &str = "transport";
    /// The background warm queue is full; the `warm` items past capacity
    /// were refused. The queue drains in the background, so a later retry
    /// usually lands.
    pub const WARM_QUEUE_FULL: &str = "warm_queue_full";

    /// Whether a request that failed with `kind` is worth retrying against
    /// the same daemon: overload clears, a panic-poisoned slot recomputes,
    /// a warm queue drains, and a dropped connection may be transient — but
    /// a bad request stays bad, a deadline re-expires, and a draining
    /// daemon is going away.
    pub fn is_retryable(kind: &str) -> bool {
        matches!(kind, OVERLOADED | COMPUTE_PANIC | TRANSPORT | WARM_QUEUE_FULL)
    }
}

/// The configuration fingerprint stored in a journal header: a journal can
/// only resume a sweep with the same scale, trials and seed. Chaos, budget,
/// jobs, timing, oracle and dense-grid flags are deliberately excluded —
/// interrupting a run with a different budget or thread count (or
/// sabotaging it in a test) must not orphan the journal, and
/// `--timing`/`--no-oracle`/`--no-dense-grid` do not change any computed
/// value.
pub fn fingerprint(args: &SweepArgs) -> Value {
    json!({
        "scale": args.scale,
        "trials": args.trials,
        "seed": args.seed,
    })
}

/// Build the sweep runner the flags describe. Exits with a message when the
/// journal cannot be opened (unwritable path, or written by a different
/// sweep/configuration).
pub fn runner(sweep: &str, args: &SweepArgs) -> SweepRunner {
    // One shared rayon pool for the whole process, sized off `--jobs` (0 =
    // all cores). Without this the kernels' internal `par_iter` would size
    // its own pool off the core count and oversubscribe the `--jobs` cell
    // workers. `build_global` succeeds once per process; later calls (tests
    // build many runners) mean the pool is already sized, which is fine —
    // results are bit-identical at every thread count either way.
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.jobs.unwrap_or(0) as usize)
        .build_global()
        .ok();
    let mut opts = RunnerOptions::new();
    opts.journal = args.journal.as_ref().map(PathBuf::from);
    opts.time_budget = args.time_budget.map(Duration::from_secs);
    if !args.chaos.is_empty() {
        opts.chaos = Some(ChaosInjector::new(&args.chaos, args.chaos_persistent));
    }
    opts.jobs = args.jobs.unwrap_or(0) as usize; // 0 = all cores
    opts.journal_fail_after = args.chaos_journal;
    match SweepRunner::new(sweep, &fingerprint(args), opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Build a machine for a sweep cell, honoring `--no-oracle`: the default
/// machine precomputes the dense hop-distance oracle, the flag falls back
/// to closed-form distances. Both produce identical values — the flag
/// exists for ablation and byte-identity verification.
pub fn machine(opts: &ComputeOpts, topo: TopologyKind, num_procs: u64, curve: CurveKind) -> Machine {
    let m = Machine::new(topo, num_procs, curve);
    if opts.no_oracle {
        m.without_oracle()
    } else {
        m
    }
}

/// Build an assignment for a sweep cell, honoring `--no-dense-grid`: the
/// default assignment carries the dense occupancy index, the flag keeps
/// only the sparse cell map. Both produce identical values — the flag
/// exists for ablation and byte-identity verification, mirroring
/// [`machine`].
pub fn assignment(
    opts: &ComputeOpts,
    particles: &[Point2],
    grid_order: u32,
    curve: CurveKind,
    num_ranks: u64,
) -> Assignment {
    Assignment::with_dense_grid(particles, grid_order, curve, num_ranks, !opts.no_dense_grid)
}

/// Write the per-cell timing envelope to `--timing PATH` when set. Called
/// after `SweepRunner::finish`; a run without the flag writes nothing.
pub fn write_timing(artifact: &str, args: &SweepArgs, summary: &SweepSummary) {
    if let Some(path) = &args.timing {
        let doc = crate::results::timing_json(artifact, args, summary);
        crate::results::write_json(path, &doc).expect("write timing envelope");
    }
}

/// Write the sweep's trace to `--trace PATH` when set: one `cell` span per
/// computed cell (wall time plus the cell name), one `phase` span per
/// [`CellTiming`](sfc_core::CellTiming) phase inside it, and a final
/// `sweep_done` event with the run accounting. Every record is stamped
/// with one per-run request id (`<artifact>-<pid>`), so traces from
/// concurrent runs appending to a shared file stay separable. Like
/// `--timing`, a pure side channel: the artifact bytes are identical with
/// tracing on or off.
pub fn write_trace(artifact: &str, args: &SweepArgs, summary: &SweepSummary) {
    let Some(path) = &args.trace else { return };
    let sink = TraceSink::to_path(path).expect("open trace file");
    let rid = format!("{artifact}-{:x}", std::process::id());
    for (cell, timing) in &summary.timings {
        for (phase, ms) in &timing.phases {
            sink.span(
                "phase",
                &rid,
                Duration::from_secs_f64(ms / 1e3),
                &[("cell", cell.as_str().to_json()), ("phase", phase.as_str().to_json())],
            );
        }
        sink.span(
            "cell",
            &rid,
            Duration::from_secs_f64(timing.wall_ms / 1e3),
            &[("cell", cell.as_str().to_json())],
        );
    }
    sink.event(
        "sweep_done",
        &rid,
        &[
            ("artifact", artifact.to_json()),
            ("computed", (summary.computed as u64).to_json()),
            ("replayed", (summary.replayed as u64).to_json()),
            ("failed", (summary.failed.len() as u64).to_json()),
        ],
    );
}

/// Report the sweep accounting on stderr: computed/replayed counts, every
/// failed cell with its error, and the cells a spent time budget left
/// uncomputed (so a follow-up run with `--journal` knows what remains).
pub fn report(sweep: &str, summary: &SweepSummary) {
    eprintln!(
        "# sweep {sweep}: {} cell(s) computed, {} replayed from journal",
        summary.computed, summary.replayed
    );
    for f in &summary.failed {
        eprintln!(
            "# sweep {sweep}: cell {} FAILED after {} attempt(s): {}",
            f.cell, f.attempts, f.error
        );
    }
    if !summary.skipped.is_empty() {
        eprintln!(
            "# sweep {sweep}: time budget exhausted; {} cell(s) not started:",
            summary.skipped.len()
        );
        for cell in &summary.skipped {
            eprintln!("#   missing {cell}");
        }
        eprintln!("# rerun with the same --journal to compute them");
    }
    if summary.journal_degraded {
        eprintln!(
            "# sweep {sweep}: JOURNAL DEGRADED — one or more journal writes \
             failed; the journal under-reports this run's coverage and a \
             resume will recompute the unrecorded cells"
        );
    }
}

/// The shared `main` of every regeneration binary: parse flags, resolve
/// the canonical spec, replay from `--cache` when the artifact is already
/// there (zero cells computed, bytes identical), otherwise run the sweep,
/// emit the artifact, and populate the cache if the run was complete and
/// un-sabotaged.
pub fn run_artifact(kind: ArtifactKind) {
    let args = SweepArgs::from_env();
    run_artifact_with(kind, &args);
}

/// [`run_artifact`] with the flags supplied by the caller (testable entry).
pub fn run_artifact_with(kind: ArtifactKind, args: &SweepArgs) {
    let spec = args.spec(kind);
    if args.emit_specs {
        // One canonical spec line and nothing else: the exact cache/daemon
        // identity this invocation would compute, suitable verbatim as an
        // `sfc-serve` `warm`/`batch` item (see EXPERIMENTS.md).
        println!("{}", spec.canonical_string());
        return;
    }
    // The CLI gets the same two-tier cache as the daemon: an in-memory LRU
    // (bounded by `--cache-mem-mb`) over the verified disk tier, so a
    // process that loads the same key repeatedly pays the file reads and
    // sha256 pass once.
    let mem_budget = args.cache_mem_mb.saturating_mul(1024 * 1024);
    let cache = args.cache.as_ref().map(|dir| {
        match ResultCache::with_memory_budget(dir, mem_budget) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot open cache `{dir}`: {e}");
                std::process::exit(2);
            }
        }
    });

    if let Some(cache) = &cache {
        if let Some(hit) = cache.load(&spec) {
            replay(kind, args, &hit);
            return;
        }
    }

    let banner = args.banner(kind.title());
    println!("{banner}");
    let mut runner = runner(kind.sweep_name(), args);
    let opts = ComputeOpts {
        no_oracle: args.no_oracle,
        no_dense_grid: args.no_dense_grid,
    };
    let out = compute(&spec, &opts, &mut runner);
    let summary = runner.finish();
    report(kind.sweep_name(), &summary);
    write_timing(kind.name(), args, &summary);
    write_trace(kind.name(), args, &summary);
    let doc = crate::results::envelope(kind.name(), &spec, &summary, out.data.clone());
    let json_text = serde_json::to_string_pretty(&doc).expect("serialize artifact");
    if let Some(path) = &args.json {
        std::fs::write(path, &json_text).expect("write JSON");
    }
    print!(
        "{}",
        if args.markdown {
            &out.body_markdown
        } else {
            &out.body_plain
        }
    );

    if let Some(cache) = &cache {
        store_if_complete(cache, kind, args, &spec, &banner, &out, &json_text, &summary);
    }
}

/// Print a cached artifact byte-for-byte: stored stdout (banner included),
/// stored JSON bytes to `--json`, an empty timing envelope, and a stderr
/// note carrying the zero-computation accounting.
fn replay(kind: ArtifactKind, args: &SweepArgs, hit: &CachedArtifact) {
    print!(
        "{}",
        if args.markdown {
            &hit.stdout_markdown
        } else {
            &hit.stdout_plain
        }
    );
    if let Some(path) = &args.json {
        std::fs::write(path, &hit.artifact_json).expect("write JSON");
    }
    write_timing(kind.name(), args, &SweepSummary::default());
    write_trace(kind.name(), args, &SweepSummary::default());
    eprintln!(
        "# cache {}: hit — 0 cell(s) computed, artifact replayed from cache",
        kind.name()
    );
}

/// Populate the cache after a fresh run — but only a trustworthy one: every
/// cell computed (or replayed), no fault injection, no time budget. A
/// partial or sabotaged artifact must never become the canonical answer.
#[allow(clippy::too_many_arguments)]
fn store_if_complete(
    cache: &ResultCache,
    kind: ArtifactKind,
    args: &SweepArgs,
    spec: &ExperimentSpec,
    banner: &str,
    out: &ArtifactOutput,
    json_text: &str,
    summary: &SweepSummary,
) {
    let sabotaged =
        !args.chaos.is_empty() || args.chaos_journal.is_some() || args.time_budget.is_some();
    if !summary.complete() || sabotaged {
        eprintln!(
            "# cache {}: not stored (incomplete or fault-injected run)",
            kind.name()
        );
        return;
    }
    let artifact = CachedArtifact {
        stdout_plain: format!("{banner}
{}", out.body_plain),
        stdout_markdown: format!("{banner}
{}", out.body_markdown),
        artifact_json: json_text.to_string(),
    };
    match cache.store(spec, &artifact) {
        Ok(()) => eprintln!(
            "# cache {}: stored {}",
            kind.name(),
            ResultCache::key(spec)
        ),
        Err(e) => eprintln!("# cache {}: store failed: {e}", kind.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_flags_build_an_injector() {
        let mut args = SweepArgs {
            chaos: vec!["t0".into()],
            ..SweepArgs::default()
        };
        args.chaos_persistent = true;
        let mut r = runner("test", &args);
        assert!(matches!(
            r.run_cell("x/t0", || vec![1.0]),
            sfc_core::runner::CellResult::Failed(_)
        ));
        assert!(matches!(
            r.run_cell("x/t9", || vec![1.0]),
            sfc_core::runner::CellResult::Computed(_)
        ));
    }

    #[test]
    fn retryable_taxonomy_is_closed_over_the_kinds() {
        use super::error_kind::*;
        assert!(is_retryable(OVERLOADED));
        assert!(is_retryable(COMPUTE_PANIC));
        assert!(is_retryable(TRANSPORT));
        assert!(is_retryable(WARM_QUEUE_FULL));
        assert!(!is_retryable(BAD_REQUEST));
        assert!(!is_retryable(DEADLINE_EXCEEDED));
        assert!(!is_retryable(DRAINING));
        assert!(!is_retryable("anything_else"));
    }

    #[test]
    fn write_trace_emits_cell_and_phase_spans_under_one_request_id() {
        let path = std::env::temp_dir().join(format!(
            "sfc-bench-trace-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let args = SweepArgs {
            trace: Some(path.to_string_lossy().into_owned()),
            ..SweepArgs::default()
        };
        let summary = SweepSummary {
            computed: 1,
            timings: vec![(
                "uniform/t0".to_string(),
                sfc_core::CellTiming {
                    wall_ms: 12.5,
                    phases: vec![("sample".to_string(), 2.0), ("nfi".to_string(), 9.0)],
                },
            )],
            ..SweepSummary::default()
        };
        write_trace("table1", &args, &summary);

        let text = std::fs::read_to_string(&path).unwrap();
        let records: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // Two phase spans, one cell span, one sweep_done event.
        assert_eq!(records.len(), 4);
        let rids: Vec<&str> = records
            .iter()
            .map(|r| r.get("request_id").and_then(Value::as_str).unwrap())
            .collect();
        assert!(rids.iter().all(|r| *r == rids[0] && r.starts_with("table1-")));
        let names: Vec<&str> = records
            .iter()
            .map(|r| r.get("name").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(names, ["phase", "phase", "cell", "sweep_done"]);
        assert_eq!(records[0].get("phase"), Some(&"sample".to_json()));
        assert_eq!(records[0].get("dur_us"), Some(&2_000u64.to_json()));
        assert_eq!(records[2].get("cell"), Some(&"uniform/t0".to_json()));
        assert_eq!(records[2].get("dur_us"), Some(&12_500u64.to_json()));
        assert_eq!(records[3].get("kind"), Some(&"event".to_json()));
        assert_eq!(records[3].get("computed"), Some(&1u64.to_json()));
        let _ = std::fs::remove_file(&path);

        // Without the flag, nothing is written.
        write_trace("table1", &SweepArgs::default(), &summary);
        assert!(!path.exists());
    }

    #[test]
    fn fingerprint_tracks_config_not_chaos() {
        let a = SweepArgs::default();
        let b = SweepArgs {
            chaos: vec!["anything".into()],
            time_budget: Some(5),
            jobs: Some(8),
            ..SweepArgs::default()
        };
        // A journal written at one thread count must resume at any other.
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = SweepArgs { seed: 1, ..SweepArgs::default() };
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }
}
