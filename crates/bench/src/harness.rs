//! Glue between [`Args`] and the fault-tolerant [`SweepRunner`].
//!
//! Every regeneration binary builds its runner here so the journaling,
//! retry, time-budget and chaos flags behave identically across binaries,
//! and reports the sweep accounting to **stderr** — stdout and the JSON
//! artifact stay byte-identical between a fresh run and a resumed one.

use crate::args::Args;
use serde_json::{json, Value};
use sfc_core::runner::{ChaosInjector, RunnerOptions, SweepRunner, SweepSummary};
use sfc_core::Machine;
use sfc_curves::CurveKind;
use sfc_topology::TopologyKind;
use std::path::PathBuf;
use std::time::Duration;

/// The configuration fingerprint stored in a journal header: a journal can
/// only resume a sweep with the same scale, trials and seed. Chaos, budget,
/// jobs, timing and oracle flags are deliberately excluded — interrupting a
/// run with a different budget or thread count (or sabotaging it in a test)
/// must not orphan the journal, and `--timing`/`--no-oracle` do not change
/// any computed value.
pub fn fingerprint(args: &Args) -> Value {
    json!({
        "scale": args.scale,
        "trials": args.trials,
        "seed": args.seed,
    })
}

/// Build the sweep runner the flags describe. Exits with a message when the
/// journal cannot be opened (unwritable path, or written by a different
/// sweep/configuration).
pub fn runner(sweep: &str, args: &Args) -> SweepRunner {
    // One shared rayon pool for the whole process, sized off `--jobs` (0 =
    // all cores). Without this the kernels' internal `par_iter` would size
    // its own pool off the core count and oversubscribe the `--jobs` cell
    // workers. `build_global` succeeds once per process; later calls (tests
    // build many runners) mean the pool is already sized, which is fine —
    // results are bit-identical at every thread count either way.
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.jobs.unwrap_or(0) as usize)
        .build_global()
        .ok();
    let mut opts = RunnerOptions::new();
    opts.journal = args.journal.as_ref().map(PathBuf::from);
    opts.time_budget = args.time_budget.map(Duration::from_secs);
    if !args.chaos.is_empty() {
        opts.chaos = Some(ChaosInjector::new(&args.chaos, args.chaos_persistent));
    }
    opts.jobs = args.jobs.unwrap_or(0) as usize; // 0 = all cores
    opts.journal_fail_after = args.chaos_journal;
    match SweepRunner::new(sweep, &fingerprint(args), opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Build a machine for a sweep cell, honoring `--no-oracle`: the default
/// machine precomputes the dense hop-distance oracle, the flag falls back
/// to closed-form distances. Both produce identical values — the flag
/// exists for ablation and byte-identity verification.
pub fn machine(args: &Args, topo: TopologyKind, num_procs: u64, curve: CurveKind) -> Machine {
    let m = Machine::new(topo, num_procs, curve);
    if args.no_oracle {
        m.without_oracle()
    } else {
        m
    }
}

/// Write the per-cell timing envelope to `--timing PATH` when set. Called
/// after `SweepRunner::finish`; a run without the flag writes nothing.
pub fn write_timing(artifact: &str, args: &Args, summary: &SweepSummary) {
    if let Some(path) = &args.timing {
        let doc = crate::results::timing_json(artifact, args, summary);
        crate::results::write_json(path, &doc).expect("write timing envelope");
    }
}

/// Report the sweep accounting on stderr: computed/replayed counts, every
/// failed cell with its error, and the cells a spent time budget left
/// uncomputed (so a follow-up run with `--journal` knows what remains).
pub fn report(sweep: &str, summary: &SweepSummary) {
    eprintln!(
        "# sweep {sweep}: {} cell(s) computed, {} replayed from journal",
        summary.computed, summary.replayed
    );
    for f in &summary.failed {
        eprintln!(
            "# sweep {sweep}: cell {} FAILED after {} attempt(s): {}",
            f.cell, f.attempts, f.error
        );
    }
    if !summary.skipped.is_empty() {
        eprintln!(
            "# sweep {sweep}: time budget exhausted; {} cell(s) not started:",
            summary.skipped.len()
        );
        for cell in &summary.skipped {
            eprintln!("#   missing {cell}");
        }
        eprintln!("# rerun with the same --journal to compute them");
    }
    if summary.journal_degraded {
        eprintln!(
            "# sweep {sweep}: JOURNAL DEGRADED — one or more journal writes \
             failed; the journal under-reports this run's coverage and a \
             resume will recompute the unrecorded cells"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_flags_build_an_injector() {
        let mut args = Args {
            chaos: vec!["t0".into()],
            ..Args::default()
        };
        args.chaos_persistent = true;
        let mut r = runner("test", &args);
        assert!(matches!(
            r.run_cell("x/t0", || vec![1.0]),
            sfc_core::runner::CellResult::Failed(_)
        ));
        assert!(matches!(
            r.run_cell("x/t9", || vec![1.0]),
            sfc_core::runner::CellResult::Computed(_)
        ));
    }

    #[test]
    fn fingerprint_tracks_config_not_chaos() {
        let a = Args::default();
        let b = Args {
            chaos: vec!["anything".into()],
            time_budget: Some(5),
            jobs: Some(8),
            ..Args::default()
        };
        // A journal written at one thread count must resume at any other.
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = Args { seed: 1, ..Args::default() };
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }
}
