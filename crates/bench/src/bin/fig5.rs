//! Regenerates **Figure 5** of the paper: Average Nearest Neighbor Stretch
//! for the four SFCs as the spatial resolution grows from 2×2 to 512×512 —
//! (a) the classic radius-1 ANNS and (b) the paper's radius-6
//! generalization.
//!
//! This experiment is resolution-exact at every scale (it sweeps *all* grid
//! cells, no sampling), so `--scale`/`--trials`/`--seed` are accepted but
//! ignored.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Figure5);
}
