//! Regenerates **Figure 5** of the paper: Average Nearest Neighbor Stretch
//! for the four SFCs as the spatial resolution grows from 2×2 to 512×512 —
//! (a) the classic radius-1 ANNS and (b) the paper's radius-6
//! generalization.
//!
//! This experiment is resolution-exact at every scale (it sweeps *all* grid
//! cells, no sampling), so `--scale`/`--trials`/`--seed` are accepted but
//! ignored.

use sfc_bench::figures::{render_anns, run_anns_sweep};
use sfc_bench::harness;
use sfc_bench::results::{anns_json, write_json};
use sfc_bench::Args;

/// The paper's largest resolution: 512×512.
const MAX_ORDER: u32 = 9;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Figure 5 — ANNS vs spatial resolution"));
    let mut runner = harness::runner("figure5", &args);
    let sweeps: Vec<_> = [1u32, 6]
        .iter()
        .map(|&radius| run_anns_sweep(radius, MAX_ORDER, &mut runner))
        .collect();
    let summary = runner.finish();
    harness::report("figure5", &summary);
    harness::write_timing("figure5", &args, &summary);
    if let Some(path) = &args.json {
        write_json(path, &anns_json(&sweeps, &args, &summary)).expect("write JSON");
    }
    for sweep in &sweeps {
        let table = render_anns(sweep);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
}
