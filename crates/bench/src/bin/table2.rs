//! Regenerates **Table II** of the paper: far-field ACD (interpolation,
//! anterpolation and interaction-list communication) for every
//! particle/processor SFC pair under the three input distributions.
//!
//! Shares the `tables` sweep (and therefore a `--journal`) with `table1`:
//! each cell computes both interaction models, so regenerating one table
//! journals the other's values too.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Table2);
}
