//! Regenerates **Table II** of the paper: far-field ACD (interpolation,
//! anterpolation and interaction-list communication) for every
//! particle/processor SFC pair under the three input distributions.

use sfc_bench::results::{grid_json, write_json};
use sfc_bench::tables::{render_grid, run_tables, Interaction};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Table II — FFI ACD, particle/processor SFC combinations"));
    let grids = run_tables(&args);
    if let Some(path) = &args.json {
        write_json(path, &grid_json(&grids, &args, "table2")).expect("write JSON");
    }
    for grid in grids {
        let table = render_grid(&grid, Interaction::FarField);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
    println!("\n(* lowest in row — paper's boldface; † lowest in column — paper's italics)");
}
