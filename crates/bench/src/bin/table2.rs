//! Regenerates **Table II** of the paper: far-field ACD (interpolation,
//! anterpolation and interaction-list communication) for every
//! particle/processor SFC pair under the three input distributions.
//!
//! Shares the `tables` sweep (and therefore a `--journal`) with `table1`:
//! each cell computes both interaction models, so regenerating one table
//! journals the other's values too.

use sfc_bench::harness;
use sfc_bench::results::{grid_json, write_json};
use sfc_bench::tables::{render_grid, run_tables, Interaction};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Table II — FFI ACD, particle/processor SFC combinations"));
    let mut runner = harness::runner("tables", &args);
    let grids = run_tables(&args, &mut runner);
    let summary = runner.finish();
    harness::report("tables", &summary);
    harness::write_timing("table2", &args, &summary);
    if let Some(path) = &args.json {
        write_json(path, &grid_json(&grids, &args, &summary, "table2")).expect("write JSON");
    }
    for grid in grids {
        let table = render_grid(&grid, Interaction::FarField);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
    println!("\n(* lowest in row — paper's boldface; † lowest in column — paper's italics)");
}
