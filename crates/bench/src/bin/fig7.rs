//! Regenerates **Figure 7** of the paper: ACD as a function of the number
//! of processors for each SFC, on a torus with 1,000,000 uniform particles
//! (`--scale 0`), for (a) near-field and (b) far-field interactions.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Figure7);
}
