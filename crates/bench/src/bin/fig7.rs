//! Regenerates **Figure 7** of the paper: ACD as a function of the number
//! of processors for each SFC, on a torus with 1,000,000 uniform particles
//! (`--scale 0`), for (a) near-field and (b) far-field interactions.

use sfc_bench::figures::{render_processors, run_processor_sweep};
use sfc_bench::harness;
use sfc_bench::results::{processors_json, write_json};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Figure 7 — ACD vs processor count (torus)"));
    let mut runner = harness::runner("figure7", &args);
    let sweep = run_processor_sweep(&args, &mut runner);
    let summary = runner.finish();
    harness::report("figure7", &summary);
    harness::write_timing("figure7", &args, &summary);
    if let Some(path) = &args.json {
        write_json(path, &processors_json(&sweep, &args, &summary)).expect("write JSON");
    }
    for near_field in [true, false] {
        let table = render_processors(&sweep, near_field);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
}
