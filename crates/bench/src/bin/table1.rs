//! Regenerates **Table I** of the paper: near-field ACD for every
//! particle/processor SFC pair under the uniform, normal and exponential
//! distributions (250,000 particles, 1024×1024 resolution, 65,536-processor
//! torus at `--scale 0`).
//!
//! Shares the `tables` sweep (and therefore a `--journal`) with `table2`:
//! each cell computes both interaction models, so regenerating one table
//! journals the other's values too.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Table1);
}
