//! Regenerates **Table I** of the paper: near-field ACD for every
//! particle/processor SFC pair under the uniform, normal and exponential
//! distributions (250,000 particles, 1024×1024 resolution, 65,536-processor
//! torus at `--scale 0`).

use sfc_bench::results::{grid_json, write_json};
use sfc_bench::tables::{render_grid, run_tables, Interaction};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Table I — NFI ACD, particle/processor SFC combinations"));
    let grids = run_tables(&args);
    if let Some(path) = &args.json {
        write_json(path, &grid_json(&grids, &args, "table1")).expect("write JSON");
    }
    for grid in grids {
        let table = render_grid(&grid, Interaction::NearField);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
    println!("\n(* lowest in row — paper's boldface; † lowest in column — paper's italics)");
}
