//! Regenerates **Table I** of the paper: near-field ACD for every
//! particle/processor SFC pair under the uniform, normal and exponential
//! distributions (250,000 particles, 1024×1024 resolution, 65,536-processor
//! torus at `--scale 0`).
//!
//! Shares the `tables` sweep (and therefore a `--journal`) with `table2`:
//! each cell computes both interaction models, so regenerating one table
//! journals the other's values too.

use sfc_bench::harness;
use sfc_bench::results::{grid_json, write_json};
use sfc_bench::tables::{render_grid, run_tables, Interaction};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Table I — NFI ACD, particle/processor SFC combinations"));
    let mut runner = harness::runner("tables", &args);
    let grids = run_tables(&args, &mut runner);
    let summary = runner.finish();
    harness::report("tables", &summary);
    harness::write_timing("table1", &args, &summary);
    if let Some(path) = &args.json {
        write_json(path, &grid_json(&grids, &args, &summary, "table1")).expect("write JSON");
    }
    for grid in grids {
        let table = render_grid(&grid, Interaction::NearField);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
    println!("\n(* lowest in row — paper's boldface; † lowest in column — paper's italics)");
}
