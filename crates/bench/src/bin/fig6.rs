//! Regenerates **Figure 6** of the paper: ACD across network topologies for
//! (a) near-field interactions at radius 4 and (b) far-field interactions.
//! 1,000,000 uniform particles on a 4096×4096 resolution at `--scale 0`,
//! with the same SFC used for particle and processor ordering.
//!
//! The paper's chart omits bus and ring (and the row-major near-field
//! entries) as off-scale; this binary prints them all so the omission is
//! verifiable.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Figure6);
}
