//! Regenerates **Figure 6** of the paper: ACD across network topologies for
//! (a) near-field interactions at radius 4 and (b) far-field interactions.
//! 1,000,000 uniform particles on a 4096×4096 resolution at `--scale 0`,
//! with the same SFC used for particle and processor ordering.
//!
//! The paper's chart omits bus and ring (and the row-major near-field
//! entries) as off-scale; this binary prints them all so the omission is
//! verifiable.

use sfc_bench::figures::{render_topology, run_topology_sweep};
use sfc_bench::harness;
use sfc_bench::results::{topology_json, write_json};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Figure 6 — ACD by network topology"));
    let mut runner = harness::runner("figure6", &args);
    let sweep = run_topology_sweep(&args, &mut runner);
    let summary = runner.finish();
    harness::report("figure6", &summary);
    harness::write_timing("figure6", &args, &summary);
    if let Some(path) = &args.json {
        write_json(path, &topology_json(&sweep, &args, &summary)).expect("write JSON");
    }
    for near_field in [true, false] {
        let table = render_topology(&sweep, near_field);
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
    println!(
        "\n(The paper plots mesh/torus/quadtree/hypercube only; bus, ring and the \
         row-major NFI entries are off its scale.)"
    );
}
