//! Extension studies beyond the paper's published evaluation, covering its
//! future-work list (Section VIII):
//!
//! 1. **Link congestion** (future work i): route every near-field message
//!    deterministically and report the maximum and mean link load per curve —
//!    does the ACD winner also spread traffic evenly?
//! 2. **3-D ANNS** (future work ii): does the Figure 5 inversion (Z and
//!    row-major beating Hilbert and Gray) persist in three dimensions?
//! 3. **3-D ACD** (future work ii): the full communication model on an
//!    octree with 3-D interconnects.
//! 4. **Clustering metric** (related-work baseline): the database metric on
//!    which the Hilbert curve famously *wins*, shown side by side with the
//!    ANNS on which it loses.
//! 5. **Closed curves**: the Moore curve (closed Hilbert) against the open
//!    Hilbert curve on a torus, plus the cyclic stretch metric.
//!
//! Each table row is one sweep cell of the `extensions` sweep, so
//! `--journal`/`--time-budget` resume and bound this binary like the paper
//! regenerations.

use sfc_bench::harness;
use sfc_bench::Args;
use sfc_core::anns::anns_cyclic;
use sfc_core::anns3d::anns3d;
use sfc_core::clustering::average_clusters;
use sfc_core::ffi::ffi_acd;
use sfc_core::load::nfi_link_load;
use sfc_core::model3d::{ffi_acd_3d, nfi_acd_3d, Assignment3, Machine3, Topology3Kind};
use sfc_core::nfi::nfi_acd;
use sfc_core::report::Table;
use sfc_core::timing;
use sfc_core::{anns::anns, Assignment, Machine};
use sfc_curves::curve3d::Curve3dKind;
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::sampler3d::sample3d;
use sfc_particles::{Distribution, DistributionKind, Workload};
use sfc_core::runner::BatchCell;
use sfc_topology::TopologyKind;
use std::sync::OnceLock;

/// Format one cell's values with the given per-column formatters, or a row
/// of `—` when the cell failed or was skipped.
fn row_or_missing(
    label: &str,
    values: Option<&[f64]>,
    fmts: &[fn(f64) -> String],
) -> Vec<String> {
    let mut row = vec![label.to_string()];
    match values {
        Some(vs) => row.extend(vs.iter().zip(fmts).map(|(&v, f)| f(v))),
        None => row.extend(fmts.iter().map(|_| "—".to_string())),
    }
    row
}

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

fn f0(v: f64) -> String {
    format!("{v:.0}")
}

/// Torus machine honoring `--no-oracle` (values identical either way).
fn torus_machine(procs: u64, curve: CurveKind, no_oracle: bool) -> Machine {
    let m = Machine::grid(TopologyKind::Torus, procs, curve);
    if no_oracle {
        m.without_oracle()
    } else {
        m
    }
}

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Extension studies (paper Section VIII future work)"));
    let mut runner = harness::runner("extensions", &args);
    let no_oracle = args.no_oracle;

    // 1. Link congestion on the torus at a scaled Table I configuration.
    let scale = args.scale.max(2); // routing every message is heavy
    let workload = Workload::tables_1_2(DistributionKind::Uniform, args.seed).scaled_down(scale);
    let procs = (65_536u64 >> (2 * scale)).max(4);
    let mut congestion = Table::new(
        format!(
            "NFI link congestion — torus, {} particles, {procs} processors",
            workload.n
        ),
        &[
            "Curve",
            "ACD",
            "max link load",
            "mean link load",
            "mean active load",
            "imbalance",
        ],
    );
    let particles = OnceLock::new();
    let congestion_cells: Vec<BatchCell> = CurveKind::PAPER
        .iter()
        .map(|&curve| {
            let particles = &particles;
            let workload = &workload;
            BatchCell::new(format!("congestion/{}", curve.short_name()), move || {
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(0)));
                let asg = timing::phase("assign", || {
                    Assignment::new(particles, workload.grid_order, curve, procs)
                });
                let machine = torus_machine(procs, curve, no_oracle);
                let load =
                    timing::phase("nfi", || nfi_link_load(&asg, &machine, 1, Norm::Chebyshev));
                let acd = if load.messages == 0 {
                    0.0
                } else {
                    load.crossings as f64 / load.messages as f64
                };
                vec![
                    acd,
                    load.max_load() as f64,
                    load.mean_load(),
                    load.mean_active_load(),
                    load.imbalance(),
                ]
            })
        })
        .collect();
    for (curve, result) in CurveKind::PAPER
        .iter()
        .zip(runner.run_cells(congestion_cells))
    {
        congestion.push_row(row_or_missing(
            curve.short_name(),
            result.values(),
            &[f3, f0, f2, f2, f2],
        ));
    }
    print!("\n{}", congestion.render());

    // 2. 3-D ANNS.
    let mut table3d = Table::new(
        "3-D ANNS (radius-1 Manhattan) — future work item ii",
        &["Cube", "Hilbert", "Z", "Gray", "RowMajor"],
    );
    let orders3d: Vec<u32> = (2..=5).collect();
    let anns3d_cells: Vec<BatchCell> = orders3d
        .iter()
        .map(|&order| {
            BatchCell::new(format!("anns3d/o{order}"), move || {
                Curve3dKind::ALL
                    .iter()
                    .map(|&k| anns3d(k, order).average())
                    .collect()
            })
        })
        .collect();
    for (&order, result) in orders3d.iter().zip(runner.run_cells(anns3d_cells)) {
        let side = 1u64 << order;
        table3d.push_row(row_or_missing(
            &format!("{side}^3"),
            result.values(),
            &[f3, f3, f3, f3],
        ));
    }
    print!("\n{}", table3d.render());

    // 3. The full 3-D ACD model: the 2-D findings replayed on an octree
    // with 3-D interconnects (future work item ii).
    let cube_order = 6u32; // 64^3 cells
    let n3 = 20_000usize;
    let procs3 = 4096u64; // 16^3 torus / 2^12 hypercube
    let particles3 = OnceLock::new();
    let mut acd3 = Table::new(
        format!("3-D ACD — {n3} uniform particles in a 64^3 cube, {procs3} processors"),
        &["Curve", "NFI mesh3d", "NFI torus3d", "NFI hypercube", "FFI torus3d"],
    );
    let seed = args.seed;
    let acd3_cells: Vec<BatchCell> = Curve3dKind::ALL
        .iter()
        .map(|&curve| {
            let particles3 = &particles3;
            BatchCell::new(format!("acd3d/{}", curve.short_name()), move || {
                let particles3 = particles3
                    .get_or_init(|| sample3d(Distribution::uniform(), cube_order, n3, seed));
                let asg = Assignment3::new(particles3, cube_order, curve, procs3);
                let mut row = Vec::new();
                for topo in Topology3Kind::ALL {
                    let machine = Machine3::new(topo, procs3, curve);
                    row.push(nfi_acd_3d(&asg, &machine, 1).acd());
                }
                // Reorder: ALL = [Mesh3d, Torus3d, Hypercube] matches headers.
                let torus = Machine3::new(Topology3Kind::Torus3d, procs3, curve);
                row.push(ffi_acd_3d(&asg, &torus).acd());
                row
            })
        })
        .collect();
    for (curve, result) in Curve3dKind::ALL.iter().zip(runner.run_cells(acd3_cells)) {
        acd3.push_row(row_or_missing(
            curve.short_name(),
            result.values(),
            &[f3, f3, f3, f3],
        ));
    }
    print!("\n{}", acd3.render());

    // 4. Clustering vs ANNS, side by side.
    let mut metrics = Table::new(
        "Clustering (4x4 queries) vs ANNS at 64x64 — the metric inversion",
        &["Curve", "avg clusters (lower=better)", "ANNS (lower=better)"],
    );
    let metric_cells: Vec<BatchCell> = CurveKind::PAPER
        .iter()
        .map(|&curve| {
            BatchCell::new(format!("metrics/{}", curve.short_name()), move || {
                vec![average_clusters(curve, 6, 4), anns(curve, 6).average()]
            })
        })
        .collect();
    for (curve, result) in CurveKind::PAPER.iter().zip(runner.run_cells(metric_cells)) {
        metrics.push_row(row_or_missing(curve.short_name(), result.values(), &[f3, f3]));
    }
    print!("\n{}", metrics.render());

    // 5. Closed curves: does closing the Hilbert loop (Moore curve) help on
    // a torus, whose links also wrap?
    let mut moore = Table::new(
        "Closed-curve study — Hilbert vs Moore on a torus",
        &["Curve", "NFI ACD", "FFI ACD", "cyclic max stretch (64x64)"],
    );
    let closed_curves = [CurveKind::Hilbert, CurveKind::Moore];
    let moore_particles = OnceLock::new();
    let moore_cells: Vec<BatchCell> = closed_curves
        .iter()
        .map(|&curve| {
            let particles = &moore_particles;
            let workload = &workload;
            BatchCell::new(format!("moore/{}", curve.short_name()), move || {
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(1)));
                let asg = timing::phase("assign", || {
                    Assignment::new(particles, workload.grid_order, curve, procs)
                });
                let machine = torus_machine(procs, curve, no_oracle);
                vec![
                    timing::phase("nfi", || nfi_acd(&asg, &machine, 1, Norm::Chebyshev).acd()),
                    timing::phase("ffi", || ffi_acd(&asg, &machine).acd()),
                    anns_cyclic(curve, 6, 1, Norm::Manhattan).max_stretch,
                ]
            })
        })
        .collect();
    for (curve, result) in closed_curves.iter().zip(runner.run_cells(moore_cells)) {
        moore.push_row(row_or_missing(curve.short_name(), result.values(), &[f3, f3, f0]));
    }
    print!("\n{}", moore.render());

    let summary = runner.finish();
    harness::report("extensions", &summary);
    harness::write_timing("extensions", &args, &summary);
    if let Some(path) = &args.json {
        let tables = [congestion, table3d, acd3, metrics, moore];
        sfc_bench::results::write_json(
            path,
            &sfc_bench::results::tables_json(&tables, &args, &summary, "extensions"),
        )
        .expect("write JSON");
    }

    println!(
        "\nNote how the Hilbert curve wins the clustering metric and the ACD\n\
         metrics but loses the ANNS — the apparent contradiction the paper\n\
         resolves by arguing metrics must model the target application."
    );
}
