//! Extension studies beyond the paper's published evaluation, covering its
//! future-work list (Section VIII) — the five studies live in
//! [`sfc_bench::extensions`]; this binary is the same thin shell as the
//! paper regenerations, so `--journal`/`--time-budget`/`--cache` behave
//! identically here.

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Extensions);
}
