//! Regenerates the **Section VI-C parametric studies**: ACD as the
//! near-field radius, the input size, and the input distribution vary
//! (torus topology, particle and processor orderings tied).

use sfc_bench::figures::{run_distribution_comparison, run_input_size_sweep, run_radius_sweep};
use sfc_bench::harness;
use sfc_bench::results::{tables_json, write_json};
use sfc_bench::Args;

fn main() {
    let args = Args::from_env();
    println!("{}", args.banner("Section VI-C — parametric studies"));
    let mut runner = harness::runner("parametric", &args);

    let radius_table = run_radius_sweep(&args, &[1, 2, 4, 6, 8], &mut runner);

    // Input sizes around the (scaled) Table I workload: ×¼, ×½, ×1, ×2.
    let base_n = (250_000usize >> (2 * args.scale)).max(64);
    let sizes = [base_n / 4, base_n / 2, base_n, base_n * 2];
    let size_table = run_input_size_sweep(&args, &sizes, &mut runner);

    let dist_table = run_distribution_comparison(&args, &mut runner);

    let summary = runner.finish();
    harness::report("parametric", &summary);
    harness::write_timing("parametric", &args, &summary);
    let tables = [radius_table, size_table, dist_table];
    if let Some(path) = &args.json {
        write_json(path, &tables_json(&tables, &args, &summary, "parametric"))
            .expect("write JSON");
    }
    for table in tables {
        print!(
            "\n{}",
            if args.markdown {
                table.render_markdown()
            } else {
                table.render()
            }
        );
    }
}
