//! Regenerates the **Section VI-C parametric studies**: ACD as the
//! near-field radius, the input size, and the input distribution vary
//! (torus topology, particle and processor orderings tied).

fn main() {
    sfc_bench::harness::run_artifact(sfc_core::ArtifactKind::Parametric);
}
