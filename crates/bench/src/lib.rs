//! # sfc-bench
//!
//! The regeneration harness: one binary per table/figure of the paper, plus
//! Criterion micro/macro benches. This library holds the shared pieces —
//! a tiny flag parser and the experiment drivers — so the binaries stay thin
//! and the integration tests can exercise the exact code paths the binaries
//! run.
//!
//! | Paper artifact | Binary | Bench |
//! |---|---|---|
//! | Figure 5(a)/(b) — ANNS vs resolution | `fig5` | `anns` |
//! | Table I — NFI ACD, 16 curve pairs × 3 distributions | `table1` | `table1` |
//! | Table II — FFI ACD, 16 curve pairs × 3 distributions | `table2` | `table2` |
//! | Figure 6 — topology comparison | `fig6` | `fig6` |
//! | Figure 7 — ACD vs processor count | `fig7` | `fig7` |
//! | Section VI-C parametric studies | `parametric` | — |
//!
//! All binaries accept `--scale S` (shrink the workload by `4^S` while
//! preserving density; the default regenerates at reduced scale 2 so a full
//! run completes in minutes — pass `--scale 0` for the paper's exact sizes),
//! `--trials T` and `--seed X`, plus the fault-tolerance flags `--journal
//! PATH` (append completed sweep cells to a JSONL journal and resume from
//! it), `--time-budget SECS` (stop scheduling new cells once spent) and
//! `--chaos LIST` (deterministic fault injection for tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod artifact;
pub mod extensions;
pub mod figures;
pub mod harness;
pub mod results;
pub mod tables;

pub use args::{Args, SweepArgs};
