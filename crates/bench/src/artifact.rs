//! One compute path for every artifact: a canonical [`ExperimentSpec`] in,
//! a rendered [`ArtifactOutput`] out.
//!
//! This is the seam the binaries, the result cache and the `sfc-serve`
//! daemon all share: [`compute`] dispatches on [`ArtifactKind`] to the
//! sweep drivers, and returns the full text body (plain and Markdown) plus
//! the JSON `data` section — everything about the artifact that must be
//! byte-identical between a fresh run, a resumed run, and a cache replay.
//! How the sweep executes (threads, journaling, chaos) lives in the
//! [`SweepRunner`] the caller passes in, never here.

use crate::figures::{
    render_anns, render_processors, render_topology, run_anns_sweep, run_distribution_comparison,
    run_input_size_sweep, run_processor_sweep, run_radius_sweep, run_topology_sweep,
};
use crate::tables::{render_grid, run_tables, Interaction};
use serde_json::Value;
use sfc_core::report::Table;
use sfc_core::runner::SweepRunner;
use sfc_core::{ArtifactKind, ExperimentSpec};

/// Knobs that change how a sweep computes but never what it computes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComputeOpts {
    /// Skip the precomputed hop-distance oracle (ablation; output bytes are
    /// identical either way).
    pub no_oracle: bool,
    /// Skip the dense occupancy grid and probe the sparse cell index per
    /// neighborhood cell (ablation; output bytes are identical either way).
    pub no_dense_grid: bool,
}

/// The rendered artifact: everything below the banner line.
#[derive(Debug, Clone)]
pub struct ArtifactOutput {
    /// Aligned-text body, exactly as the binary prints it after the banner.
    pub body_plain: String,
    /// Markdown body (identical to `body_plain` for artifacts that render
    /// no Markdown variant).
    pub body_markdown: String,
    /// The `data` section of the JSON envelope.
    pub data: Value,
}

/// Footnote of the Table I/II renders.
const TABLES_NOTE: &str =
    "(* lowest in row — paper's boldface; † lowest in column — paper's italics)";

/// Footnote of the Figure 6 render.
const FIG6_NOTE: &str = "(The paper plots mesh/torus/quadtree/hypercube only; bus, ring and the \
     row-major NFI entries are off its scale.)";

/// Footnote of the extensions render.
const EXTENSIONS_NOTE: &str = "Note how the Hilbert curve wins the clustering metric and the ACD\n\
     metrics but loses the ANNS — the apparent contradiction the paper\n\
     resolves by arguing metrics must model the target application.";

/// Accumulates the two text bodies a run prints: each table rendered in
/// both formats, in order, with the binaries' historical `\n` separators.
struct Body {
    plain: String,
    markdown: String,
}

impl Body {
    fn new() -> Self {
        Body {
            plain: String::new(),
            markdown: String::new(),
        }
    }

    fn push_table(&mut self, table: &Table) {
        self.plain.push('\n');
        self.plain.push_str(&table.render());
        self.markdown.push('\n');
        self.markdown.push_str(&table.render_markdown());
    }

    /// Push a table that has no Markdown variant (extensions).
    fn push_table_plain(&mut self, table: &Table) {
        let text = table.render();
        self.plain.push('\n');
        self.plain.push_str(&text);
        self.markdown.push('\n');
        self.markdown.push_str(&text);
    }

    fn push_note(&mut self, note: &str) {
        let line = format!("\n{note}\n");
        self.plain.push_str(&line);
        self.markdown.push_str(&line);
    }

    fn into_output(self, data: Value) -> ArtifactOutput {
        ArtifactOutput {
            body_plain: self.plain,
            body_markdown: self.markdown,
            data,
        }
    }
}

/// Run the sweep `spec` describes through `runner` and render its artifact.
pub fn compute(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> ArtifactOutput {
    let mut body = Body::new();
    match spec.artifact {
        ArtifactKind::Table1 | ArtifactKind::Table2 => {
            let which = if spec.artifact == ArtifactKind::Table1 {
                Interaction::NearField
            } else {
                Interaction::FarField
            };
            let grids = run_tables(spec, opts, runner);
            for grid in &grids {
                body.push_table(&render_grid(grid, which));
            }
            body.push_note(TABLES_NOTE);
            body.into_output(crate::results::grid_data(&grids))
        }
        ArtifactKind::Figure5 => {
            let sweeps: Vec<_> = spec
                .radii
                .iter()
                .map(|&radius| run_anns_sweep(radius, &spec.orders, runner))
                .collect();
            for sweep in &sweeps {
                body.push_table(&render_anns(sweep));
            }
            body.into_output(crate::results::anns_data(&sweeps))
        }
        ArtifactKind::Figure6 => {
            let sweep = run_topology_sweep(spec, opts, runner);
            for near_field in [true, false] {
                body.push_table(&render_topology(&sweep, near_field));
            }
            body.push_note(FIG6_NOTE);
            body.into_output(crate::results::topology_data(&sweep))
        }
        ArtifactKind::Figure7 => {
            let sweep = run_processor_sweep(spec, opts, runner);
            for near_field in [true, false] {
                body.push_table(&render_processors(&sweep, near_field));
            }
            body.into_output(crate::results::processors_data(&sweep))
        }
        ArtifactKind::Parametric => {
            let tables = [
                run_radius_sweep(spec, opts, runner),
                run_input_size_sweep(spec, opts, runner),
                run_distribution_comparison(spec, opts, runner),
            ];
            for table in &tables {
                body.push_table(table);
            }
            body.into_output(crate::results::tables_data(&tables))
        }
        ArtifactKind::Extensions => {
            let tables = crate::extensions::run_extensions(spec, opts, runner);
            for table in &tables {
                body.push_table_plain(table);
            }
            body.push_note(EXTENSIONS_NOTE);
            body.into_output(crate::results::tables_data(&tables))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(artifact: ArtifactKind) -> ExperimentSpec {
        let mut s = ExperimentSpec::for_artifact(artifact, 5, 1, 3);
        if artifact == ArtifactKind::Figure5 {
            // The full 512x512 ANNS sweep is too slow for a unit test.
            s.orders = (1..=4).collect();
        }
        if artifact == ArtifactKind::Parametric {
            s.radii = vec![1, 2];
            s.particle_counts = vec![100, 200];
        }
        s
    }

    #[test]
    fn every_artifact_computes_and_renders() {
        for artifact in [
            ArtifactKind::Table1,
            ArtifactKind::Figure5,
            ArtifactKind::Figure7,
            ArtifactKind::Parametric,
        ] {
            let out = compute(
                &spec(artifact),
                &ComputeOpts::default(),
                &mut SweepRunner::ephemeral(),
            );
            assert!(!out.body_plain.is_empty(), "{artifact}: empty body");
            assert!(out.body_plain.starts_with('\n'));
            assert!(out.body_plain.ends_with('\n'));
            assert!(out.data.as_array().is_some() || out.data.as_object().is_some());
        }
    }

    #[test]
    fn tables_render_the_requested_interaction() {
        let t1 = compute(
            &spec(ArtifactKind::Table1),
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        let t2 = compute(
            &spec(ArtifactKind::Table2),
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        assert!(t1.body_plain.contains("Table I (NFI)"));
        assert!(t2.body_plain.contains("Table II (FFI)"));
        // Same sweep, same data section: only the render differs.
        assert_eq!(t1.data, t2.data);
    }

    #[test]
    fn markdown_body_differs_only_in_format() {
        let out = compute(
            &spec(ArtifactKind::Figure5),
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        assert_ne!(out.body_plain, out.body_markdown);
        assert!(out.body_markdown.contains('|'));
    }

    #[test]
    fn no_oracle_is_byte_identical() {
        let fast = compute(
            &spec(ArtifactKind::Figure7),
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        let slow = compute(
            &spec(ArtifactKind::Figure7),
            &ComputeOpts {
                no_oracle: true,
                ..ComputeOpts::default()
            },
            &mut SweepRunner::ephemeral(),
        );
        assert_eq!(fast.body_plain, slow.body_plain);
        assert_eq!(fast.data, slow.data);
    }

    #[test]
    fn no_dense_grid_is_byte_identical() {
        // The dense occupancy index is a pure fast path: every artifact
        // that consumes assignments must render identical bytes without it.
        for artifact in [ArtifactKind::Table1, ArtifactKind::Figure6] {
            let dense = compute(
                &spec(artifact),
                &ComputeOpts::default(),
                &mut SweepRunner::ephemeral(),
            );
            let sparse = compute(
                &spec(artifact),
                &ComputeOpts {
                    no_dense_grid: true,
                    ..ComputeOpts::default()
                },
                &mut SweepRunner::ephemeral(),
            );
            assert_eq!(dense.body_plain, sparse.body_plain, "{artifact}");
            assert_eq!(dense.body_markdown, sparse.body_markdown, "{artifact}");
            assert_eq!(dense.data, sparse.data, "{artifact}");
        }
    }
}
