//! Drivers for Figures 5, 6 and 7 and the Section VI-C parametric studies.
//!
//! Every sweep is decomposed into named cells — one `(configuration, trial)`
//! unit each — executed through the fault-tolerant [`SweepRunner`], so an
//! interrupted regeneration resumes from its `--journal` and a cell that
//! panics is retried, then recorded as a structured failure without
//! aborting the rest of the sweep. Values missing after a partial sweep
//! surface as `None` entries and render as `—`.

use crate::artifact::ComputeOpts;
use sfc_core::anns::anns_radius;
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::report::Table;
use sfc_core::runner::{BatchCell, CellResult, SweepRunner};
use sfc_core::timing;
use sfc_core::{ExperimentSpec, Stats};
use sfc_curves::point::Norm;
use sfc_curves::{CurveKind, Point2};
use sfc_particles::Workload;
use sfc_topology::TopologyKind;
use std::sync::OnceLock;

/// Format an optional mean to the paper's three decimals, `—` when the
/// partial sweep left it uncomputed.
fn fmt_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "—".to_string(),
    }
}

fn mean_of(samples: &[f64]) -> Option<f64> {
    Stats::try_from_samples(samples).ok().map(|s| s.mean)
}

// ---------------------------------------------------------------------------
// Figure 5: ANNS vs spatial resolution
// ---------------------------------------------------------------------------

/// One data series of Figure 5: per curve, the average stretch at each grid
/// order.
#[derive(Debug, Clone)]
pub struct AnnsSweep {
    /// Neighborhood radius (1 for Figure 5(a), 6 for 5(b)).
    pub radius: u32,
    /// Grid orders measured (resolution = `2^order` per side).
    pub orders: Vec<u32>,
    /// `values[curve][order_index]` = average stretch (`None` if the cell
    /// failed or was skipped).
    pub values: Vec<Vec<Option<f64>>>,
}

/// Run the Figure 5 sweep for a given radius over the given grid orders
/// (the paper's Figure 5 spans 2×2 through 512×512, i.e. orders
/// `1..=9`). Cell `"r{radius}/{curve}/o{order}"` produces the single
/// stretch value for that resolution.
pub fn run_anns_sweep(radius: u32, orders: &[u32], runner: &mut SweepRunner) -> AnnsSweep {
    let orders: Vec<u32> = orders.to_vec();
    let mut cells = Vec::with_capacity(4 * orders.len());
    for &curve in CurveKind::PAPER.iter() {
        for &order in &orders {
            let name = format!("r{radius}/{}/o{order}", curve.short_name());
            cells.push(BatchCell::new(name, move || {
                timing::phase("anns", || {
                    vec![anns_radius(curve, order, radius, Norm::Manhattan)
                        .unwrap_or_else(|e| panic!("anns_radius: {e}"))
                        .average()]
                })
            }));
        }
    }
    let results = runner.run_cells(cells);
    let values = (0..4)
        .map(|c| {
            (0..orders.len())
                .map(|oi| results[c * orders.len() + oi].values().map(|v| v[0]))
                .collect()
        })
        .collect();
    AnnsSweep {
        radius,
        orders,
        values,
    }
}

/// Render an ANNS sweep as a table: rows = resolution, columns = curves.
pub fn render_anns(sweep: &AnnsSweep) -> Table {
    let title = format!(
        "Figure 5({}) — Average Nearest Neighbor Stretch, radius {}",
        if sweep.radius == 1 { "a" } else { "b" },
        sweep.radius
    );
    let mut header = vec!["Resolution"];
    header.extend(CurveKind::PAPER.iter().map(|c| c.name()));
    let mut table = Table::new(title, &header);
    for (i, &order) in sweep.orders.iter().enumerate() {
        let side = 1u64 << order;
        let mut row = vec![format!("{side}x{side}")];
        row.extend((0..4).map(|c| fmt_cell(sweep.values[c][i])));
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 6: topology comparison
// ---------------------------------------------------------------------------

/// Results of the Figure 6 sweep: `nfi[topology][curve]`, `ffi` likewise.
#[derive(Debug, Clone)]
pub struct TopologySweep {
    /// Topologies measured, in display order.
    pub topologies: Vec<TopologyKind>,
    /// Near-field ACD per (topology, curve).
    pub nfi: Vec<Vec<Option<Stats>>>,
    /// Far-field ACD per (topology, curve).
    pub ffi: Vec<Vec<Option<Stats>>>,
}

/// Near-field radius of the Figure 6 experiment ("a radius of 4 was used").
pub const FIG6_RADIUS: u32 = 4;

/// Run the Figure 6 experiment: 1,000,000 uniform particles on a 4096×4096
/// resolution (scaled by `--scale`), the same SFC for particle and
/// processor order, across all six topologies (the paper plots four and
/// notes bus/ring are off the scale).
///
/// Cell `"t{trial}/{curve}"` produces twelve values: the (near-field,
/// far-field) ACD pair on each of the six topologies, interleaved.
pub fn run_topology_sweep(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> TopologySweep {
    let workload = spec.workload(spec.distributions[0]);
    let num_procs = spec.processors[0];
    let radius = spec.radii[0];
    let norm = spec.norm;
    let topologies: Vec<TopologyKind> = spec.topologies.clone();
    let nt = topologies.len();

    let trial_particles: Vec<OnceLock<Vec<Point2>>> =
        (0..spec.trials).map(|_| OnceLock::new()).collect();
    let mut cells = Vec::with_capacity(spec.trials as usize * 4);
    for t in 0..spec.trials {
        let particles = &trial_particles[t as usize];
        for &curve in spec.particle_curves.iter() {
            let name = format!("t{t}/{}", curve.short_name());
            let workload = &workload;
            let topologies = &topologies;
            cells.push(BatchCell::new(name, move || {
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(t)));
                let asg = timing::phase("assign", || {
                    crate::harness::assignment(opts, particles, workload.grid_order, curve, num_procs)
                });
                let tree = timing::phase("index", || OwnerTree::build(&asg));
                let mut values = Vec::with_capacity(2 * nt);
                for &topo in topologies {
                    let machine = crate::harness::machine(opts, topo, num_procs, curve);
                    values.push(timing::phase("nfi", || {
                        nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                    }));
                    values.push(timing::phase("ffi", || {
                        ffi_acd_with_tree(&asg, &machine, &tree)
                            .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                            .acd()
                    }));
                }
                values
            }));
        }
    }

    let mut nfi = vec![vec![Vec::new(); 4]; nt];
    let mut ffi = vec![vec![Vec::new(); 4]; nt];
    for (i, result) in runner.run_cells(cells).iter().enumerate() {
        let ci = i % 4;
        if let Some(values) = result.values() {
            for ti in 0..nt {
                nfi[ti][ci].push(values[2 * ti]);
                ffi[ti][ci].push(values[2 * ti + 1]);
            }
        }
    }
    let collect = |data: Vec<Vec<Vec<f64>>>| -> Vec<Vec<Option<Stats>>> {
        data.into_iter()
            .map(|row| row.iter().map(|s| Stats::try_from_samples(s).ok()).collect())
            .collect()
    };
    TopologySweep {
        topologies,
        nfi: collect(nfi),
        ffi: collect(ffi),
    }
}

/// Render one interaction model of the Figure 6 sweep: rows = curve,
/// columns = topology.
pub fn render_topology(sweep: &TopologySweep, near_field: bool) -> Table {
    let (tag, data) = if near_field {
        ("a: Near-Field", &sweep.nfi)
    } else {
        ("b: Far-Field", &sweep.ffi)
    };
    let mut header = vec!["Curve"];
    let names: Vec<&str> = sweep.topologies.iter().map(|t| t.name()).collect();
    header.extend(names.iter());
    let mut table = Table::new(format!("Figure 6({tag}) — ACD by topology"), &header);
    for (ci, &curve) in CurveKind::PAPER.iter().enumerate() {
        let mut row = vec![curve.name().to_string()];
        row.extend(
            (0..sweep.topologies.len())
                .map(|ti| fmt_cell(data[ti][ci].as_ref().map(|s| s.mean))),
        );
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 7: ACD vs processor count
// ---------------------------------------------------------------------------

/// Results of the Figure 7 sweep: `nfi[proc_index][curve]`, `ffi` likewise.
#[derive(Debug, Clone)]
pub struct ProcessorSweep {
    /// Processor counts measured.
    pub processors: Vec<u64>,
    /// Near-field ACD per (processor count, curve).
    pub nfi: Vec<Vec<Option<Stats>>>,
    /// Far-field ACD per (processor count, curve).
    pub ffi: Vec<Vec<Option<Stats>>>,
}

/// Run the Figure 7 experiment: 1,000,000 uniform particles (scaled), torus
/// topology, same SFC for both orderings, with the processor count swept
/// over powers of four.
///
/// Cell `"t{trial}/{curve}/p{procs}"` produces the (near-field, far-field)
/// ACD pair.
pub fn run_processor_sweep(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> ProcessorSweep {
    let workload = spec.workload(spec.distributions[0]);
    // Paper scale: 256 .. 65,536 processors, shifted down with the
    // workload; the spec carries the resolved list in ascending order.
    let processors = spec.processors.clone();
    let topology = spec.topologies[0];
    let radius = spec.radii[0];
    let norm = spec.norm;

    let trial_particles: Vec<OnceLock<Vec<Point2>>> =
        (0..spec.trials).map(|_| OnceLock::new()).collect();
    let np = processors.len();
    let mut cells = Vec::with_capacity(spec.trials as usize * 4 * np);
    for t in 0..spec.trials {
        let particles = &trial_particles[t as usize];
        for &curve in spec.particle_curves.iter() {
            for &procs in &processors {
                let name = format!("t{t}/{}/p{procs}", curve.short_name());
                let workload = &workload;
                cells.push(BatchCell::new(name, move || {
                    let particles = timing::phase("sample", || {
                        particles.get_or_init(|| workload.particles(t))
                    });
                    let asg = timing::phase("assign", || {
                        crate::harness::assignment(opts, particles, workload.grid_order, curve, procs)
                    });
                    let tree = timing::phase("index", || OwnerTree::build(&asg));
                    let machine = crate::harness::machine(opts, topology, procs, curve);
                    vec![
                        timing::phase("nfi", || {
                            nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                        }),
                        timing::phase("ffi", || {
                            ffi_acd_with_tree(&asg, &machine, &tree)
                            .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                            .acd()
                        }),
                    ]
                }));
            }
        }
    }

    let mut nfi = vec![vec![Vec::new(); 4]; np];
    let mut ffi = vec![vec![Vec::new(); 4]; np];
    for (i, result) in runner.run_cells(cells).iter().enumerate() {
        let ci = (i / np) % 4;
        let pi = i % np;
        if let Some(values) = result.values() {
            nfi[pi][ci].push(values[0]);
            ffi[pi][ci].push(values[1]);
        }
    }
    let collect = |data: Vec<Vec<Vec<f64>>>| -> Vec<Vec<Option<Stats>>> {
        data.into_iter()
            .map(|row| row.iter().map(|s| Stats::try_from_samples(s).ok()).collect())
            .collect()
    };
    ProcessorSweep {
        processors,
        nfi: collect(nfi),
        ffi: collect(ffi),
    }
}

/// Render one interaction model of the Figure 7 sweep: rows = processor
/// count, columns = curves.
pub fn render_processors(sweep: &ProcessorSweep, near_field: bool) -> Table {
    let (tag, data) = if near_field {
        ("a: Near-Field", &sweep.nfi)
    } else {
        ("b: Far-Field", &sweep.ffi)
    };
    let mut header = vec!["Processors"];
    header.extend(CurveKind::PAPER.iter().map(|c| c.name()));
    let mut table = Table::new(format!("Figure 7({tag}) — ACD vs processors (torus)"), &header);
    for (pi, &procs) in sweep.processors.iter().enumerate() {
        let mut row = vec![procs.to_string()];
        row.extend((0..4).map(|ci| fmt_cell(data[pi][ci].as_ref().map(|s| s.mean))));
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Section VI-C parametric studies
// ---------------------------------------------------------------------------

/// Per-trial particle sets of one workload, sampled lazily so replayed
/// cells cost nothing. Thread-safe: the cells of one trial may run on
/// different workers, and whichever asks first samples the set.
struct TrialCache<'a> {
    workload: &'a Workload,
    sets: Vec<OnceLock<Vec<Point2>>>,
}

impl<'a> TrialCache<'a> {
    fn new(workload: &'a Workload, trials: u64) -> Self {
        TrialCache {
            workload,
            sets: (0..trials).map(|_| OnceLock::new()).collect(),
        }
    }

    fn get(&self, t: u64) -> &[Point2] {
        self.sets[t as usize].get_or_init(|| self.workload.particles(t))
    }
}

/// NFI ACD as the neighborhood radius varies (torus, tied curves).
/// Cell `"r{radius}/{curve}/t{trial}"` produces the single ACD value.
pub fn run_radius_sweep(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> Table {
    let radii = &spec.radii;
    let workload = spec.workload(spec.distributions[0]);
    let num_procs = spec.processors[0];
    let norm = spec.norm;
    let cache = TrialCache::new(&workload, spec.trials);
    let mut cells = Vec::with_capacity(radii.len() * 4 * spec.trials as usize);
    for &radius in radii {
        for &curve in &spec.particle_curves {
            for t in 0..spec.trials {
                let name = format!("r{radius}/{}/t{t}", curve.short_name());
                let cache = &cache;
                let workload = &workload;
                cells.push(BatchCell::new(name, move || {
                    let particles = timing::phase("sample", || cache.get(t));
                    let asg = timing::phase("assign", || {
                        crate::harness::assignment(opts, particles, workload.grid_order, curve, num_procs)
                    });
                    let machine =
                        crate::harness::machine(opts, TopologyKind::Torus, num_procs, curve);
                    vec![timing::phase("nfi", || {
                        nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                    })]
                }));
            }
        }
    }
    let results = runner.run_cells(cells);

    let mut header = vec!["Radius"];
    header.extend(CurveKind::PAPER.iter().map(|c| c.name()));
    let mut table = Table::new("Section VI-C — NFI ACD vs neighborhood radius", &header);
    let mut it = results.chunks(spec.trials as usize);
    for &radius in radii {
        let mut row = vec![radius.to_string()];
        for _curve in &CurveKind::PAPER {
            let acds = collect_first_values(it.next().unwrap());
            row.push(fmt_cell(mean_of(&acds)));
        }
        table.push_row(row);
    }
    table
}

/// First value of every completed cell in a chunk of batch results.
fn collect_first_values(results: &[CellResult]) -> Vec<f64> {
    results.iter().filter_map(|r| r.values().map(|v| v[0])).collect()
}

/// ACD as the input size varies at a fixed processor count (torus, tied
/// curves); near- and far-field rendered as two column groups.
/// Cell `"n{particles}/{curve}/t{trial}"` produces the (NFI, FFI) pair.
pub fn run_input_size_sweep(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> Table {
    let sizes: Vec<usize> = spec.particle_counts.iter().map(|&n| n as usize).collect();
    let base = spec.workload(spec.distributions[0]);
    let num_procs = spec.processors[0];
    let radius = spec.radii[0];
    let norm = spec.norm;
    let mut owned_headers: Vec<String> = vec!["Particles".into()];
    for c in &CurveKind::PAPER {
        owned_headers.push(c.short_name().to_string());
    }
    for c in &CurveKind::PAPER {
        owned_headers.push(format!("{} (FFI)", c.short_name()));
    }
    let header_refs: Vec<&str> = owned_headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Section VI-C — ACD vs input size (NFI columns then FFI columns)",
        &header_refs,
    );
    let workloads: Vec<Workload> = sizes
        .iter()
        .map(|&n| Workload::new(base.grid_order, n, base.dist, base.seed))
        .collect();
    let caches: Vec<TrialCache> = workloads
        .iter()
        .map(|w| TrialCache::new(w, spec.trials))
        .collect();
    let mut cells = Vec::with_capacity(sizes.len() * 4 * spec.trials as usize);
    for (si, &n) in sizes.iter().enumerate() {
        for &curve in &spec.particle_curves {
            for t in 0..spec.trials {
                let name = format!("n{n}/{}/t{t}", curve.short_name());
                let cache = &caches[si];
                let workload = &workloads[si];
                cells.push(BatchCell::new(name, move || {
                    let particles = timing::phase("sample", || cache.get(t));
                    let asg = timing::phase("assign", || {
                        crate::harness::assignment(opts, particles, workload.grid_order, curve, num_procs)
                    });
                    let tree = timing::phase("index", || OwnerTree::build(&asg));
                    let machine =
                        crate::harness::machine(opts, TopologyKind::Torus, num_procs, curve);
                    vec![
                        timing::phase("nfi", || {
                            nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                        }),
                        timing::phase("ffi", || {
                            ffi_acd_with_tree(&asg, &machine, &tree)
                            .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                            .acd()
                        }),
                    ]
                }));
            }
        }
    }
    let results = runner.run_cells(cells);

    let mut it = results.chunks(spec.trials as usize);
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        let mut ffi_cols = Vec::with_capacity(4);
        for _curve in &CurveKind::PAPER {
            let chunk = it.next().unwrap();
            let nfi_s = collect_first_values(chunk);
            let ffi_s: Vec<f64> =
                chunk.iter().filter_map(|r| r.values().map(|v| v[1])).collect();
            row.push(fmt_cell(mean_of(&nfi_s)));
            ffi_cols.push(fmt_cell(mean_of(&ffi_s)));
        }
        row.extend(ffi_cols);
        table.push_row(row);
    }
    table
}

/// ACD per distribution at the Table I/II configuration with tied curves —
/// the Section VI-C observation that NFI is best under uniform inputs while
/// FFI barely distinguishes the distributions.
/// Cell `"{distribution}/{curve}/t{trial}"` produces the (NFI, FFI) pair.
pub fn run_distribution_comparison(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> Table {
    let num_procs = spec.processors[0];
    let radius = spec.radii[0];
    let norm = spec.norm;
    let mut owned: Vec<String> = vec!["Distribution".into()];
    for c in &CurveKind::PAPER {
        owned.push(format!("{} (NFI)", c.short_name()));
    }
    for c in &CurveKind::PAPER {
        owned.push(format!("{} (FFI)", c.short_name()));
    }
    let header: Vec<&str> = owned.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Section VI-C — ACD by input distribution (tied curves)", &header);
    let workloads: Vec<Workload> = spec
        .distributions
        .iter()
        .map(|&dist| spec.workload(dist))
        .collect();
    let caches: Vec<TrialCache> = workloads
        .iter()
        .map(|w| TrialCache::new(w, spec.trials))
        .collect();
    let mut cells =
        Vec::with_capacity(spec.distributions.len() * 4 * spec.trials as usize);
    for (di, dist) in spec.distributions.iter().enumerate() {
        for &curve in &spec.particle_curves {
            for t in 0..spec.trials {
                let name = format!("{}/{}/t{t}", dist.kind, curve.short_name());
                let cache = &caches[di];
                let workload = &workloads[di];
                cells.push(BatchCell::new(name, move || {
                    let particles = timing::phase("sample", || cache.get(t));
                    let asg = timing::phase("assign", || {
                        crate::harness::assignment(opts, particles, workload.grid_order, curve, num_procs)
                    });
                    let tree = timing::phase("index", || OwnerTree::build(&asg));
                    let machine =
                        crate::harness::machine(opts, TopologyKind::Torus, num_procs, curve);
                    vec![
                        timing::phase("nfi", || {
                            nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                        }),
                        timing::phase("ffi", || {
                            ffi_acd_with_tree(&asg, &machine, &tree)
                            .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                            .acd()
                        }),
                    ]
                }));
            }
        }
    }
    let results = runner.run_cells(cells);

    let mut it = results.chunks(spec.trials as usize);
    for dist in &spec.distributions {
        let mut nfi_row = vec![dist.kind.name().to_string()];
        let mut ffi_row = Vec::with_capacity(4);
        for _curve in &CurveKind::PAPER {
            let chunk = it.next().unwrap();
            let nfi_s = collect_first_values(chunk);
            let ffi_s: Vec<f64> =
                chunk.iter().filter_map(|r| r.values().map(|v| v[1])).collect();
            nfi_row.push(fmt_cell(mean_of(&nfi_s)));
            ffi_row.push(fmt_cell(mean_of(&ffi_s)));
        }
        nfi_row.extend(ffi_row);
        table.push_row(nfi_row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // scale 5: 128x128 fig6 grid, ~976 particles, 64 processors.
    fn tiny_spec(artifact: sfc_core::ArtifactKind) -> ExperimentSpec {
        ExperimentSpec::for_artifact(artifact, 5, 1, 3)
    }

    fn opts() -> ComputeOpts {
        ComputeOpts::default()
    }

    #[test]
    fn anns_sweep_shape() {
        let sweep = run_anns_sweep(1, &[1, 2, 3, 4, 5], &mut SweepRunner::ephemeral());
        assert_eq!(sweep.orders, vec![1, 2, 3, 4, 5]);
        assert_eq!(sweep.values.len(), 4);
        assert_eq!(sweep.values[0].len(), 5);
        let table = render_anns(&sweep);
        assert_eq!(table.num_rows(), 5);
        assert!(table.render().contains("32x32"));
    }

    #[test]
    fn anns_values_grow_with_resolution() {
        let sweep = run_anns_sweep(1, &[1, 2, 3, 4, 5, 6], &mut SweepRunner::ephemeral());
        for series in &sweep.values {
            assert!(series.windows(2).all(|w| w[0].unwrap() < w[1].unwrap()));
        }
    }

    #[test]
    fn topology_sweep_runs_all_six() {
        let sweep = run_topology_sweep(
            &tiny_spec(sfc_core::ArtifactKind::Figure6),
            &opts(),
            &mut SweepRunner::ephemeral(),
        );
        assert_eq!(sweep.topologies.len(), 6);
        let t = render_topology(&sweep, true);
        assert_eq!(t.num_rows(), 4);
        assert!(t.render().contains("Hypercube"));
        let f = render_topology(&sweep, false);
        assert!(f.render().contains("Far-Field"));
    }

    #[test]
    fn processor_sweep_is_monotone_in_p_for_row_major_nfi() {
        // More processors spread neighbors further apart; ACD should not
        // shrink as p grows (fixed workload).
        let sweep = run_processor_sweep(
            &tiny_spec(sfc_core::ArtifactKind::Figure7),
            &opts(),
            &mut SweepRunner::ephemeral(),
        );
        assert!(sweep.processors.len() >= 2);
        let row_major_series: Vec<f64> = (0..sweep.processors.len())
            .map(|pi| sweep.nfi[pi][3].as_ref().unwrap().mean)
            .collect();
        let first = row_major_series.first().unwrap();
        let last = row_major_series.last().unwrap();
        assert!(last >= first);
        let t = render_processors(&sweep, true);
        assert_eq!(t.num_rows(), sweep.processors.len());
    }

    #[test]
    fn radius_sweep_radii_increase_acd_weakly() {
        let mut spec = tiny_spec(sfc_core::ArtifactKind::Parametric);
        spec.radii = vec![1, 2];
        let table = run_radius_sweep(&spec, &opts(), &mut SweepRunner::ephemeral());
        assert_eq!(table.num_rows(), 2);
    }

    #[test]
    fn distribution_comparison_rows() {
        let table = run_distribution_comparison(
            &tiny_spec(sfc_core::ArtifactKind::Parametric),
            &opts(),
            &mut SweepRunner::ephemeral(),
        );
        assert_eq!(table.num_rows(), 3);
        let text = table.render();
        assert!(text.contains("Uniform") && text.contains("Exponential"));
    }

    #[test]
    fn input_size_sweep_rows() {
        let mut spec = tiny_spec(sfc_core::ArtifactKind::Parametric);
        spec.particle_counts = vec![200, 400];
        let table = run_input_size_sweep(&spec, &opts(), &mut SweepRunner::ephemeral());
        assert_eq!(table.num_rows(), 2);
    }

    #[test]
    fn skipped_cells_render_as_missing() {
        let mut args = crate::args::SweepArgs {
            scale: 5,
            trials: 1,
            seed: 3,
            ..crate::args::SweepArgs::default()
        };
        args.time_budget = Some(0);
        let mut runner = crate::harness::runner("figure7", &args);
        let sweep = run_processor_sweep(
            &tiny_spec(sfc_core::ArtifactKind::Figure7),
            &opts(),
            &mut runner,
        );
        assert!(sweep.nfi.iter().flatten().all(|s| s.is_none()));
        let text = render_processors(&sweep, true).render();
        assert!(text.contains('—'));
        let summary = runner.finish();
        assert_eq!(summary.computed, 0);
        assert!(!summary.skipped.is_empty());
    }
}
