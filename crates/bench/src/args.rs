//! Minimal command-line flag parsing for the regeneration binaries.
//!
//! Hand-rolled on purpose: the binaries take three numeric flags and
//! `--markdown`, which does not justify an argument-parsing dependency.

/// Parsed command-line options shared by all regeneration binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Scale-down exponent: workloads shrink by `4^scale` (0 = paper size).
    pub scale: u32,
    /// Number of independent trials to average.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Emit Markdown tables instead of aligned text.
    pub markdown: bool,
    /// Also write the artifact as a JSON document to this path.
    pub json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 2,
            trials: 3,
            seed: 20130701, // ICPP 2013, for flavor; any constant works.
            markdown: false,
            json: None,
        }
    }
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    /// Returns an error message on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = next_num(&mut it, "--scale")? as u32,
                "--trials" => {
                    out.trials = next_num(&mut it, "--trials")?;
                    if out.trials == 0 {
                        return Err("--trials must be at least 1".into());
                    }
                }
                "--seed" => out.seed = next_num(&mut it, "--seed")?,
                "--markdown" => out.markdown = true,
                "--json" => {
                    out.json = Some(
                        it.next().ok_or_else(|| "--json needs a path".to_string())?,
                    )
                }
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        Ok(out)
    }

    /// Parse from the process environment, exiting with a message on error.
    pub fn from_env() -> Args {
        match Args::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Render a one-line description of the effective configuration.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "# {what} | scale={} (paper sizes / 4^{}), trials={}, seed={}",
            self.scale, self.scale, self.trials, self.seed
        )
    }
}

fn next_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: `{v}` is not a non-negative integer"))
}

fn usage() -> String {
    "usage: <bin> [--scale S] [--trials T] [--seed X] [--markdown]\n\
     --scale S    shrink the paper workload by 4^S (default 2; 0 = full size)\n\
     --trials T   independent trials to average (default 3)\n\
     --seed X     base RNG seed (default 20130701)\n\
     --markdown   print Markdown tables\n\
     --json PATH  also write the artifact as JSON"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, Args::default());
        assert_eq!(a.scale, 2);
        assert_eq!(a.trials, 3);
        assert!(!a.markdown);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--scale", "0", "--trials", "5", "--seed", "42", "--markdown", "--json", "/tmp/x.json",
        ])
        .unwrap();
        assert_eq!(a.scale, 0);
        assert_eq!(a.trials, 5);
        assert_eq!(a.seed, 42);
        assert!(a.markdown);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--json"]).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("usage:"));
    }
}
