//! Minimal command-line flag parsing for the regeneration binaries.
//!
//! Hand-rolled on purpose: the binaries take a handful of flags, which does
//! not justify an argument-parsing dependency.
//!
//! All seven binaries share this one parser: the *what to compute* flags
//! (`--scale`, `--trials`, `--seed`) resolve to a canonical
//! [`ExperimentSpec`] via [`SweepArgs::spec`], while the remaining flags
//! describe *how to run it* (threads, journaling, fault injection, output
//! paths, result cache) and deliberately stay out of the spec — they never
//! change a computed byte.

use sfc_core::{ArtifactKind, ExperimentSpec};

/// Historical name of [`SweepArgs`], kept so existing imports keep working.
pub type Args = SweepArgs;

/// Parsed command-line options shared by all regeneration binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Scale-down exponent: workloads shrink by `4^scale` (0 = paper size).
    pub scale: u32,
    /// Number of independent trials to average.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Emit Markdown tables instead of aligned text.
    pub markdown: bool,
    /// Also write the artifact as a JSON document to this path.
    pub json: Option<String>,
    /// JSONL journal to append completed sweep cells to / resume from.
    pub journal: Option<String>,
    /// Wall-clock budget in seconds; once spent, remaining cells are skipped.
    pub time_budget: Option<u64>,
    /// Fault injection: cells whose name contains one of these substrings
    /// panic on their first attempt (testing only).
    pub chaos: Vec<String>,
    /// Make `--chaos` panic on every attempt instead of only the first.
    pub chaos_persistent: bool,
    /// Worker threads for sweep cells; `None` = all cores. Output bytes are
    /// identical at every value.
    pub jobs: Option<u64>,
    /// Journal fault injection: after this many record writes, every
    /// further write fails (testing only).
    pub chaos_journal: Option<u64>,
    /// Write the per-cell timing envelope (wall-clock and phase breakdown
    /// for every cell computed this run) as JSON to this path. Kept
    /// separate from `--json`: timings are wall-clock facts about one run,
    /// while the artifact must stay byte-identical across runs.
    pub timing: Option<String>,
    /// Write one JSONL trace record per computed sweep cell (a span per
    /// cell plus one per timed phase, stamped with a shared per-run
    /// request id) to this path. Like `--timing`, a side channel: the
    /// artifact bytes are identical with tracing on or off.
    pub trace: Option<String>,
    /// Disable the precomputed hop-distance oracle and fall back to the
    /// closed-form topology distances (ablation/verification only; output
    /// bytes are identical either way).
    pub no_oracle: bool,
    /// Disable the dense occupancy grid and probe the sparse cell index
    /// per neighborhood cell instead (ablation/verification only; output
    /// bytes are identical either way).
    pub no_dense_grid: bool,
    /// Content-addressed result cache directory: a repeat of an already
    /// cached spec replays the stored artifact byte-for-byte with zero
    /// sweep cells computed; a fresh complete run populates it.
    pub cache: Option<String>,
    /// Byte budget (MiB) of the in-memory tier in front of the `--cache`
    /// disk tier; 0 disables the tier. Within one process, repeats of a
    /// loaded key skip file reads and sha256 verification entirely.
    pub cache_mem_mb: u64,
    /// Print the canonical spec this invocation would compute (one JSON
    /// line, directly usable as an `sfc-serve` `warm`/`batch` item) and
    /// exit without computing anything.
    pub emit_specs: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            scale: 2,
            trials: 3,
            seed: 20130701, // ICPP 2013, for flavor; any constant works.
            markdown: false,
            json: None,
            journal: None,
            time_budget: None,
            chaos: Vec::new(),
            chaos_persistent: false,
            jobs: None,
            chaos_journal: None,
            timing: None,
            trace: None,
            no_oracle: false,
            no_dense_grid: false,
            cache: None,
            cache_mem_mb: 64,
            emit_specs: false,
        }
    }
}

impl SweepArgs {
    /// Parse from an iterator of arguments (excluding the program name).
    /// Returns an error message on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<SweepArgs, String> {
        let mut out = SweepArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = next_num(&mut it, "--scale")? as u32,
                "--trials" => {
                    out.trials = next_num(&mut it, "--trials")?;
                    if out.trials == 0 {
                        return Err("--trials must be at least 1".into());
                    }
                }
                "--seed" => out.seed = next_num(&mut it, "--seed")?,
                "--markdown" => out.markdown = true,
                "--json" => {
                    out.json = Some(
                        it.next().ok_or_else(|| "--json needs a path".to_string())?,
                    )
                }
                "--journal" => {
                    out.journal = Some(
                        it.next()
                            .ok_or_else(|| "--journal needs a path".to_string())?,
                    )
                }
                "--time-budget" => {
                    out.time_budget = Some(next_num(&mut it, "--time-budget")?)
                }
                "--chaos" => {
                    let list = it
                        .next()
                        .ok_or_else(|| "--chaos needs a pattern list".to_string())?;
                    out.chaos
                        .extend(list.split(',').filter(|p| !p.is_empty()).map(String::from));
                }
                "--chaos-persistent" => out.chaos_persistent = true,
                "--jobs" => {
                    let n = next_num(&mut it, "--jobs")?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    out.jobs = Some(n);
                }
                "--chaos-journal" => {
                    out.chaos_journal = Some(next_num(&mut it, "--chaos-journal")?)
                }
                "--timing" => {
                    out.timing = Some(
                        it.next()
                            .ok_or_else(|| "--timing needs a path".to_string())?,
                    )
                }
                "--trace" => {
                    out.trace = Some(
                        it.next()
                            .ok_or_else(|| "--trace needs a path".to_string())?,
                    )
                }
                "--no-oracle" => out.no_oracle = true,
                "--no-dense-grid" => out.no_dense_grid = true,
                "--cache" => {
                    out.cache = Some(
                        it.next()
                            .ok_or_else(|| "--cache needs a directory".to_string())?,
                    )
                }
                "--cache-mem-mb" => {
                    out.cache_mem_mb = next_num(&mut it, "--cache-mem-mb")?
                }
                "--emit-specs" => out.emit_specs = true,
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        Ok(out)
    }

    /// Parse from the process environment, exiting with a message on error.
    pub fn from_env() -> SweepArgs {
        match SweepArgs::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The canonical spec of the computation these flags describe for
    /// `artifact` — the cache/daemon identity of the run. Only
    /// `--scale`/`--trials`/`--seed` feed it; every other flag is a runner
    /// option that cannot change a computed byte.
    pub fn spec(&self, artifact: ArtifactKind) -> ExperimentSpec {
        ExperimentSpec::for_artifact(artifact, self.scale, self.trials, self.seed)
    }

    /// Render a one-line description of the effective configuration.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "# {what} | scale={} (paper sizes / 4^{}), trials={}, seed={}",
            self.scale, self.scale, self.trials, self.seed
        )
    }
}

fn next_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: `{v}` is not a non-negative integer"))
}

fn usage() -> String {
    "usage: <bin> [--scale S] [--trials T] [--seed X] [--jobs N] [--markdown] [--json PATH] [--timing PATH] [--trace PATH] [--no-oracle] [--no-dense-grid] [--emit-specs]\n\
     \u{20}          [--cache DIR] [--cache-mem-mb N] [--journal PATH] [--time-budget SECS] [--chaos LIST] [--chaos-persistent] [--chaos-journal N]\n\
     --scale S            shrink the paper workload by 4^S (default 2; 0 = full size)\n\
     --trials T           independent trials to average (default 3)\n\
     --seed X             base RNG seed (default 20130701)\n\
     --jobs N             worker threads for sweep cells (default: all cores);\n\
     \u{20}                    output bytes are identical for every N\n\
     --markdown           print Markdown tables\n\
     --json PATH          also write the artifact as JSON\n\
     --timing PATH        write the per-cell timing envelope (wall-clock and\n\
     \u{20}                    sample/assign/nfi/ffi phase breakdown) as JSON\n\
     --trace PATH         write one JSONL span per computed cell and phase,\n\
     \u{20}                    stamped with a shared per-run request id\n\
     --no-oracle          skip the precomputed hop-distance oracle and use\n\
     \u{20}                    closed-form distances (output bytes identical)\n\
     --no-dense-grid      skip the dense occupancy index and probe the sparse\n\
     \u{20}                    cell map per cell (output bytes identical)\n\
     --cache DIR          content-addressed result cache: replay an already\n\
     \u{20}                    cached run byte-for-byte, else populate it\n\
     --cache-mem-mb N     in-memory tier byte budget over --cache, in MiB\n\
     \u{20}                    (default 64; 0 = disk only)\n\
     --emit-specs         print the canonical spec this invocation would\n\
     \u{20}                    compute (one JSON line, an sfc-serve warm/batch\n\
     \u{20}                    item) and exit without computing\n\
     --journal PATH       append completed sweep cells to a JSONL journal and\n\
     \u{20}                    resume from it on restart\n\
     --time-budget SECS   stop scheduling new cells after SECS seconds; partial\n\
     \u{20}                    results are flushed and missing cells reported\n\
     --chaos LIST         comma-separated cell-name substrings to fault-inject\n\
     \u{20}                    (panic on first attempt; testing only)\n\
     --chaos-persistent   make --chaos panic on every attempt\n\
     --chaos-journal N    fail every journal write after the first N\n\
     \u{20}                    (testing only)"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, SweepArgs::default());
        assert_eq!(a.scale, 2);
        assert_eq!(a.trials, 3);
        assert!(!a.markdown);
        assert_eq!(a.journal, None);
        assert_eq!(a.time_budget, None);
        assert!(a.chaos.is_empty());
        assert_eq!(a.jobs, None);
        assert_eq!(a.chaos_journal, None);
        assert_eq!(a.timing, None);
        assert_eq!(a.trace, None);
        assert!(!a.no_oracle);
        assert!(!a.no_dense_grid);
        assert_eq!(a.cache, None);
        assert_eq!(a.cache_mem_mb, 64);
        assert!(!a.emit_specs);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--scale",
            "0",
            "--trials",
            "5",
            "--seed",
            "42",
            "--markdown",
            "--json",
            "/tmp/x.json",
            "--journal",
            "/tmp/x.jsonl",
            "--time-budget",
            "90",
            "--chaos",
            "uniform/t0,t1",
            "--chaos-persistent",
            "--jobs",
            "4",
            "--chaos-journal",
            "2",
            "--timing",
            "/tmp/x.timing.json",
            "--trace",
            "/tmp/x.trace.jsonl",
            "--no-oracle",
            "--no-dense-grid",
            "--cache",
            "/tmp/cache",
            "--cache-mem-mb",
            "16",
            "--emit-specs",
        ])
        .unwrap();
        assert_eq!(a.scale, 0);
        assert_eq!(a.trials, 5);
        assert_eq!(a.seed, 42);
        assert!(a.markdown);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(a.journal.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(a.time_budget, Some(90));
        assert_eq!(a.chaos, vec!["uniform/t0".to_string(), "t1".to_string()]);
        assert!(a.chaos_persistent);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.chaos_journal, Some(2));
        assert_eq!(a.timing.as_deref(), Some("/tmp/x.timing.json"));
        assert_eq!(a.trace.as_deref(), Some("/tmp/x.trace.jsonl"));
        assert!(a.no_oracle);
        assert!(a.no_dense_grid);
        assert_eq!(a.cache.as_deref(), Some("/tmp/cache"));
        assert_eq!(a.cache_mem_mb, 16);
        assert!(a.emit_specs);
    }

    #[test]
    fn emit_specs_prints_the_canonical_spec() {
        let a = parse(&["--scale", "4", "--trials", "1", "--seed", "7", "--emit-specs"]).unwrap();
        // The emitted line is exactly the spec's canonical string — the
        // same identity the cache and daemon key the run by.
        let spec = a.spec(ArtifactKind::Figure7);
        assert_eq!(spec.canonical_string(), ExperimentSpec::figure7(4, 1, 7).canonical_string());
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--json"]).is_err());
        assert!(parse(&["--journal"]).is_err());
        assert!(parse(&["--time-budget", "soon"]).is_err());
        assert!(parse(&["--chaos"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--chaos-journal", "many"]).is_err());
        assert!(parse(&["--timing"]).is_err());
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--cache"]).is_err());
        assert!(parse(&["--cache-mem-mb", "lots"]).is_err());
    }

    #[test]
    fn spec_reflects_the_what_flags_only() {
        let a = parse(&["--scale", "4", "--trials", "2", "--seed", "99"]).unwrap();
        let b = parse(&[
            "--scale", "4", "--trials", "2", "--seed", "99", "--jobs", "3", "--markdown",
            "--no-oracle", "--no-dense-grid", "--cache", "/tmp/c",
        ])
        .unwrap();
        let spec = a.spec(ArtifactKind::Table1);
        assert_eq!(spec, ExperimentSpec::table1(4, 2, 99));
        // Runner options never reach the spec (or its hash).
        assert_eq!(spec.canonical_hash(), b.spec(ArtifactKind::Table1).canonical_hash());
        assert_ne!(
            spec.canonical_hash(),
            b.spec(ArtifactKind::Figure7).canonical_hash()
        );
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("usage:"));
    }

    #[test]
    fn usage_synopsis_lists_every_flag() {
        // The synopsis (first two lines) must stay in sync with the flag
        // list: every `--flag` documented below appears above, and vice
        // versa.
        let text = usage();
        let mut lines = text.lines();
        let synopsis = format!("{} {}", lines.next().unwrap(), lines.next().unwrap());
        let documented: Vec<&str> = text
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().next())
            .filter(|w| w.starts_with("--"))
            .collect();
        assert!(!documented.is_empty());
        for flag in documented {
            assert!(
                synopsis.contains(flag),
                "usage synopsis is missing `{flag}`"
            );
        }
    }
}
