//! Driver for the extension studies beyond the paper's published
//! evaluation, covering its future-work list (Section VIII):
//!
//! 1. **Link congestion** (future work i): route every near-field message
//!    deterministically and report the maximum and mean link load per curve —
//!    does the ACD winner also spread traffic evenly?
//! 2. **3-D ANNS** (future work ii): does the Figure 5 inversion (Z and
//!    row-major beating Hilbert and Gray) persist in three dimensions?
//! 3. **3-D ACD** (future work ii): the full communication model on an
//!    octree with 3-D interconnects.
//! 4. **Clustering metric** (related-work baseline): the database metric on
//!    which the Hilbert curve famously *wins*, shown side by side with the
//!    ANNS on which it loses.
//! 5. **Closed curves**: the Moore curve (closed Hilbert) against the open
//!    Hilbert curve on a torus, plus the cyclic stretch metric.
//!
//! Each table row is one sweep cell of the `extensions` sweep, so
//! `--journal`/`--time-budget` resume and bound this artifact like the
//! paper regenerations. The 2-D axes come from the [`ExperimentSpec`]
//! (whose `extensions` constructor floors the scale at 2 — routing every
//! message is heavy); the fixed 3-D and clustering side experiments are
//! constants of the artifact family itself.

use crate::artifact::ComputeOpts;
use sfc_core::anns::{anns, anns_cyclic};
use sfc_core::anns3d::anns3d;
use sfc_core::clustering::average_clusters;
use sfc_core::ffi::ffi_acd;
use sfc_core::load::nfi_link_load;
use sfc_core::model3d::{ffi_acd_3d, nfi_acd_3d, Assignment3, Machine3, Topology3Kind};
use sfc_core::nfi::nfi_acd;
use sfc_core::report::Table;
use sfc_core::runner::{BatchCell, SweepRunner};
use sfc_core::timing;
use sfc_core::ExperimentSpec;
use sfc_curves::curve3d::Curve3dKind;
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::sampler3d::sample3d;
use sfc_particles::Distribution;
use sfc_topology::TopologyKind;
use std::sync::OnceLock;

/// Format one cell's values with the given per-column formatters, or a row
/// of `—` when the cell failed or was skipped.
fn row_or_missing(
    label: &str,
    values: Option<&[f64]>,
    fmts: &[fn(f64) -> String],
) -> Vec<String> {
    let mut row = vec![label.to_string()];
    match values {
        Some(vs) => row.extend(vs.iter().zip(fmts).map(|(&v, f)| f(v))),
        None => row.extend(fmts.iter().map(|_| "—".to_string())),
    }
    row
}

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

fn f0(v: f64) -> String {
    format!("{v:.0}")
}

/// Run the five extension studies, returning their tables in render order.
pub fn run_extensions(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> Vec<Table> {
    // 1. Link congestion on the torus at the spec's (floored) Table I
    // configuration.
    let workload = spec.workload(spec.distributions[0]);
    let procs = spec.processors[0];
    let radius = spec.radii[0];
    let norm = spec.norm;
    let mut congestion = Table::new(
        format!(
            "NFI link congestion — torus, {} particles, {procs} processors",
            workload.n
        ),
        &[
            "Curve",
            "ACD",
            "max link load",
            "mean link load",
            "mean active load",
            "imbalance",
        ],
    );
    let particles = OnceLock::new();
    let congestion_cells: Vec<BatchCell> = spec
        .particle_curves
        .iter()
        .map(|&curve| {
            let particles = &particles;
            let workload = &workload;
            BatchCell::new(format!("congestion/{}", curve.short_name()), move || {
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(0)));
                let asg = timing::phase("assign", || {
                    crate::harness::assignment(opts, particles, workload.grid_order, curve, procs)
                });
                let machine = crate::harness::machine(opts, TopologyKind::Torus, procs, curve);
                let load =
                    timing::phase("nfi", || nfi_link_load(&asg, &machine, radius, norm));
                let acd = if load.messages == 0 {
                    0.0
                } else {
                    load.crossings as f64 / load.messages as f64
                };
                vec![
                    acd,
                    load.max_load() as f64,
                    load.mean_load(),
                    load.mean_active_load(),
                    load.imbalance(),
                ]
            })
        })
        .collect();
    for (curve, result) in spec
        .particle_curves
        .iter()
        .zip(runner.run_cells(congestion_cells))
    {
        congestion.push_row(row_or_missing(
            curve.short_name(),
            result.values(),
            &[f3, f0, f2, f2, f2],
        ));
    }

    // 2. 3-D ANNS.
    let mut table3d = Table::new(
        "3-D ANNS (radius-1 Manhattan) — future work item ii",
        &["Cube", "Hilbert", "Z", "Gray", "RowMajor"],
    );
    let orders3d: Vec<u32> = (2..=5).collect();
    let anns3d_cells: Vec<BatchCell> = orders3d
        .iter()
        .map(|&order| {
            BatchCell::new(format!("anns3d/o{order}"), move || {
                Curve3dKind::ALL
                    .iter()
                    .map(|&k| anns3d(k, order).average())
                    .collect()
            })
        })
        .collect();
    for (&order, result) in orders3d.iter().zip(runner.run_cells(anns3d_cells)) {
        let side = 1u64 << order;
        table3d.push_row(row_or_missing(
            &format!("{side}^3"),
            result.values(),
            &[f3, f3, f3, f3],
        ));
    }

    // 3. The full 3-D ACD model: the 2-D findings replayed on an octree
    // with 3-D interconnects (future work item ii).
    let cube_order = 6u32; // 64^3 cells
    let n3 = 20_000usize;
    let procs3 = 4096u64; // 16^3 torus / 2^12 hypercube
    let particles3 = OnceLock::new();
    let mut acd3 = Table::new(
        format!("3-D ACD — {n3} uniform particles in a 64^3 cube, {procs3} processors"),
        &["Curve", "NFI mesh3d", "NFI torus3d", "NFI hypercube", "FFI torus3d"],
    );
    let seed = spec.seed;
    let acd3_cells: Vec<BatchCell> = Curve3dKind::ALL
        .iter()
        .map(|&curve| {
            let particles3 = &particles3;
            BatchCell::new(format!("acd3d/{}", curve.short_name()), move || {
                let particles3 = particles3
                    .get_or_init(|| sample3d(Distribution::uniform(), cube_order, n3, seed));
                let asg = Assignment3::new(particles3, cube_order, curve, procs3);
                let mut row = Vec::new();
                for topo in Topology3Kind::ALL {
                    let machine = Machine3::new(topo, procs3, curve);
                    row.push(nfi_acd_3d(&asg, &machine, 1).acd());
                }
                // Reorder: ALL = [Mesh3d, Torus3d, Hypercube] matches headers.
                let torus = Machine3::new(Topology3Kind::Torus3d, procs3, curve);
                row.push(ffi_acd_3d(&asg, &torus).acd());
                row
            })
        })
        .collect();
    for (curve, result) in Curve3dKind::ALL.iter().zip(runner.run_cells(acd3_cells)) {
        acd3.push_row(row_or_missing(
            curve.short_name(),
            result.values(),
            &[f3, f3, f3, f3],
        ));
    }

    // 4. Clustering vs ANNS, side by side.
    let mut metrics = Table::new(
        "Clustering (4x4 queries) vs ANNS at 64x64 — the metric inversion",
        &["Curve", "avg clusters (lower=better)", "ANNS (lower=better)"],
    );
    let metric_cells: Vec<BatchCell> = spec
        .particle_curves
        .iter()
        .map(|&curve| {
            BatchCell::new(format!("metrics/{}", curve.short_name()), move || {
                vec![
                    average_clusters(curve, 6, 4),
                    anns(curve, 6)
                        .unwrap_or_else(|e| panic!("anns: {e}"))
                        .average(),
                ]
            })
        })
        .collect();
    for (curve, result) in spec
        .particle_curves
        .iter()
        .zip(runner.run_cells(metric_cells))
    {
        metrics.push_row(row_or_missing(curve.short_name(), result.values(), &[f3, f3]));
    }

    // 5. Closed curves: does closing the Hilbert loop (Moore curve) help on
    // a torus, whose links also wrap?
    let mut moore = Table::new(
        "Closed-curve study — Hilbert vs Moore on a torus",
        &["Curve", "NFI ACD", "FFI ACD", "cyclic max stretch (64x64)"],
    );
    let closed_curves = [CurveKind::Hilbert, CurveKind::Moore];
    let moore_particles = OnceLock::new();
    let moore_cells: Vec<BatchCell> = closed_curves
        .iter()
        .map(|&curve| {
            let particles = &moore_particles;
            let workload = &workload;
            BatchCell::new(format!("moore/{}", curve.short_name()), move || {
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(1)));
                let asg = timing::phase("assign", || {
                    crate::harness::assignment(opts, particles, workload.grid_order, curve, procs)
                });
                let machine = crate::harness::machine(opts, TopologyKind::Torus, procs, curve);
                vec![
                    timing::phase("nfi", || {
                        nfi_acd(&asg, &machine, radius, norm)
                            .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                            .acd()
                    }),
                    timing::phase("ffi", || {
                        ffi_acd(&asg, &machine)
                            .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                            .acd()
                    }),
                    anns_cyclic(curve, 6, 1, Norm::Manhattan)
                        .unwrap_or_else(|e| panic!("anns_cyclic: {e}"))
                        .max_stretch,
                ]
            })
        })
        .collect();
    for (curve, result) in closed_curves.iter().zip(runner.run_cells(moore_cells)) {
        moore.push_row(row_or_missing(curve.short_name(), result.values(), &[f3, f3, f0]));
    }

    vec![congestion, table3d, acd3, metrics, moore]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_produce_five_tables() {
        let spec = ExperimentSpec::extensions(5, 1, 20130701);
        let tables = run_extensions(
            &spec,
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        assert_eq!(tables.len(), 5);
        assert!(tables[0].title().contains("link congestion"));
        assert!(tables[4].title().contains("Moore"));
        for t in &tables {
            assert!(t.num_rows() >= 2, "{} too short", t.title());
        }
    }
}
