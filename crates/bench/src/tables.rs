//! Drivers for Tables I and II: the 4 × 4 particle/processor curve grid
//! under each input distribution.
//!
//! Paper setup (Section VI-A): 250,000 particles on a 1024 × 1024
//! resolution, 65,536 processors on a torus, each of
//! {Hilbert, Z, Gray, Row-major}² as the (particle, processor) curve pair,
//! for the uniform, normal and exponential distributions. Table I reports
//! the near-field ACD (radius-1 Chebyshev neighborhoods), Table II the
//! far-field ACD.
//!
//! The sweep is decomposed into one cell per `(distribution, trial,
//! particle curve)` — the unit of work the fault-tolerant [`SweepRunner`]
//! journals and resumes. A cell builds its particle-order assignment (and
//! owner tree) once and evaluates it against the four processor-order
//! machines, so the work sharing matches the original monolithic loop.

use crate::artifact::ComputeOpts;
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::report::Table;
use sfc_core::runner::{BatchCell, SweepRunner};
use sfc_core::timing;
use sfc_core::{ExperimentSpec, Machine, Stats};
use sfc_curves::CurveKind;
use sfc_particles::{Distribution, DistributionKind};
use std::sync::OnceLock;

/// Results of the 4 × 4 curve-pair grid for one distribution:
/// `values[processor_curve][particle_curve]`. A cell is `None` when every
/// trial that would feed it failed or was skipped (partial sweep).
#[derive(Debug, Clone)]
pub struct CurvePairGrid {
    /// The input distribution the grid was measured under.
    pub distribution: DistributionKind,
    /// Near-field ACD (Table I).
    pub nfi: [[Option<Stats>; 4]; 4],
    /// Far-field ACD (Table II).
    pub ffi: [[Option<Stats>; 4]; 4],
}

/// Run the Table I/II experiment for every distribution in the spec.
pub fn run_tables(
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> Vec<CurvePairGrid> {
    spec.distributions
        .iter()
        .map(|&dist| run_distribution(dist, spec, opts, runner))
        .collect()
}

/// Run the 4 × 4 grid for one distribution.
///
/// Cell `"{distribution}/t{trial}/{particle_curve}"` produces eight values:
/// the near-field ACD against each of the four processor-order machines,
/// then the far-field ACD against each.
pub fn run_distribution(
    dist: Distribution,
    spec: &ExperimentSpec,
    opts: &ComputeOpts,
    runner: &mut SweepRunner,
) -> CurvePairGrid {
    let workload = spec.workload(dist);
    let num_procs = spec.processors[0];
    let radius = spec.radii[0];
    let norm = spec.norm;
    let machines: Vec<Machine> = spec
        .effective_processor_curves()
        .iter()
        .map(|&proc_curve| {
            crate::harness::machine(opts, spec.topologies[0], num_procs, proc_curve)
        })
        .collect();

    // Per-trial particle sets, sampled lazily and shared by the trial's
    // four cells (which may run on different worker threads): a fully
    // replayed trial never materializes its particles.
    let trial_particles: Vec<OnceLock<Vec<sfc_curves::point::Point2>>> =
        (0..spec.trials).map(|_| OnceLock::new()).collect();
    let mut cells = Vec::with_capacity(spec.trials as usize * 4);
    for t in 0..spec.trials {
        let particles = &trial_particles[t as usize];
        for &particle_curve in spec.particle_curves.iter() {
            let name = format!("{}/t{t}/{}", dist.kind, particle_curve.short_name());
            let workload = &workload;
            let machines = &machines;
            cells.push(BatchCell::new(name, move || {
                // Phase markers feed the `--timing` envelope; "sample" is
                // only paid by the first of a trial's four cells (the rest
                // hit the OnceLock).
                let particles =
                    timing::phase("sample", || particles.get_or_init(|| workload.particles(t)));
                let asg = timing::phase("assign", || {
                    crate::harness::assignment(
                        opts,
                        particles,
                        workload.grid_order,
                        particle_curve,
                        num_procs,
                    )
                });
                let tree = timing::phase("index", || OwnerTree::build(&asg));
                let mut values = Vec::with_capacity(8);
                timing::phase("nfi", || {
                    for machine in machines {
                        values.push(
                            nfi_acd(&asg, machine, radius, norm)
                                .unwrap_or_else(|e| panic!("nfi_acd: {e}"))
                                .acd(),
                        );
                    }
                });
                timing::phase("ffi", || {
                    for machine in machines {
                        values.push(
                            ffi_acd_with_tree(&asg, machine, &tree)
                                .unwrap_or_else(|e| panic!("ffi_acd: {e}"))
                                .acd(),
                        );
                    }
                });
                values
            }));
        }
    }

    let mut nfi_samples = vec![vec![Vec::new(); 4]; 4];
    let mut ffi_samples = vec![vec![Vec::new(); 4]; 4];
    for (i, result) in runner.run_cells(cells).iter().enumerate() {
        let pi = i % 4;
        if let Some(values) = result.values() {
            for ri in 0..4 {
                nfi_samples[ri][pi].push(values[ri]);
                ffi_samples[ri][pi].push(values[4 + ri]);
            }
        }
    }

    let collect = |samples: &Vec<Vec<Vec<f64>>>| -> [[Option<Stats>; 4]; 4] {
        std::array::from_fn(|ri| {
            std::array::from_fn(|pi| Stats::try_from_samples(&samples[ri][pi]).ok())
        })
    };
    CurvePairGrid {
        distribution: dist.kind,
        nfi: collect(&nfi_samples),
        ffi: collect(&ffi_samples),
    }
}

/// Which of the two tables to render from a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// Table I: near-field.
    NearField,
    /// Table II: far-field.
    FarField,
}

/// Render one distribution's grid in the paper's layout (rows = processor
/// order, columns = particle order). The lowest value in each row is marked
/// `*` and the lowest in each column `†`, mirroring the paper's boldface and
/// italics. Cells missing from a partial sweep render as `—`.
pub fn render_grid(grid: &CurvePairGrid, which: Interaction) -> Table {
    let (name, values) = match which {
        Interaction::NearField => ("Table I (NFI)", &grid.nfi),
        Interaction::FarField => ("Table II (FFI)", &grid.ffi),
    };
    let title = format!("{name} — {} Distribution", grid.distribution);
    let mut header = vec!["Processor Order \\ Particle Order"];
    header.extend(CurveKind::PAPER.iter().map(|c| c.name()));
    let mut table = Table::new(title, &header);

    let means: Vec<Vec<Option<f64>>> = (0..4)
        .map(|r| (0..4).map(|p| values[r][p].as_ref().map(|s| s.mean)).collect())
        .collect();
    let min_of = |it: &mut dyn Iterator<Item = Option<f64>>| -> f64 {
        it.flatten().fold(f64::INFINITY, f64::min)
    };
    let row_min: Vec<f64> = means
        .iter()
        .map(|row| min_of(&mut row.iter().copied()))
        .collect();
    let col_min: Vec<f64> = (0..4)
        .map(|p| min_of(&mut means.iter().map(|row| row[p])))
        .collect();

    for (r, &proc_curve) in CurveKind::PAPER.iter().enumerate() {
        let mut cells = vec![proc_curve.name().to_string()];
        for p in 0..4 {
            let s = match means[r][p] {
                Some(v) => {
                    let mut s = format!("{v:.3}");
                    if v == row_min[r] {
                        s.push('*');
                    }
                    if v == col_min[p] {
                        s.push('†');
                    }
                    s
                }
                None => "—".to_string(),
            };
            cells.push(s);
        }
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // 64x64 grid, ~976 particles, 256 processors.
    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::table1(4, 2, 99)
    }

    fn run(dist: DistributionKind) -> CurvePairGrid {
        run_distribution(
            dist.default_params(),
            &tiny_spec(),
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        )
    }

    #[test]
    fn grid_has_full_shape_and_sane_values() {
        let grid = run(DistributionKind::Uniform);
        for r in 0..4 {
            for p in 0..4 {
                let nfi = grid.nfi[r][p].as_ref().unwrap();
                assert_eq!(nfi.n, 2);
                assert!(nfi.mean >= 0.0);
                assert!(grid.ffi[r][p].as_ref().unwrap().mean > 0.0);
            }
        }
    }

    #[test]
    fn hilbert_pair_beats_row_major_pair() {
        // The diagonal comparison the paper's conclusions rest on.
        let grid = run(DistributionKind::Uniform);
        assert!(grid.nfi[0][0].unwrap().mean < grid.nfi[3][3].unwrap().mean);
        assert!(grid.ffi[0][0].unwrap().mean < grid.ffi[3][3].unwrap().mean);
    }

    #[test]
    fn render_marks_minima() {
        let grid = run(DistributionKind::Exponential);
        let text = render_grid(&grid, Interaction::NearField).render();
        assert!(text.contains('*'));
        assert!(text.contains('†'));
        assert!(text.contains("Exponential"));
        let ffi_text = render_grid(&grid, Interaction::FarField).render();
        assert!(ffi_text.contains("Table II"));
    }

    #[test]
    fn results_reproducible_across_runs() {
        let a = run(DistributionKind::Normal);
        let b = run(DistributionKind::Normal);
        assert_eq!(a.nfi[2][1].unwrap().mean, b.nfi[2][1].unwrap().mean);
        assert_eq!(a.ffi[1][3].unwrap().mean, b.ffi[1][3].unwrap().mean);
    }

    #[test]
    fn partial_sweep_renders_missing_cells() {
        // Persistent chaos on the Hilbert particle curve: column 0 of every
        // grid row has no samples.
        let mut args = crate::args::SweepArgs {
            scale: 4,
            trials: 2,
            seed: 99,
            ..crate::args::SweepArgs::default()
        };
        args.chaos = vec!["/Hilbert".into()];
        args.chaos_persistent = true;
        let mut runner = crate::harness::runner("tables", &args);
        let grid = run_distribution(
            DistributionKind::Uniform.default_params(),
            &tiny_spec(),
            &ComputeOpts::default(),
            &mut runner,
        );
        assert!(grid.nfi[0][0].is_none());
        assert!(grid.nfi[0][1].is_some());
        let text = render_grid(&grid, Interaction::NearField).render();
        assert!(text.contains('—'));
        let summary = runner.finish();
        assert_eq!(summary.failed.len(), 2); // one per trial
        assert!(!summary.complete());
    }
}
