//! Drivers for Tables I and II: the 4 × 4 particle/processor curve grid
//! under each input distribution.
//!
//! Paper setup (Section VI-A): 250,000 particles on a 1024 × 1024
//! resolution, 65,536 processors on a torus, each of
//! {Hilbert, Z, Gray, Row-major}² as the (particle, processor) curve pair,
//! for the uniform, normal and exponential distributions. Table I reports
//! the near-field ACD (radius-1 Chebyshev neighborhoods), Table II the
//! far-field ACD.
//!
//! The driver shares work across the grid: per trial it builds the four
//! particle-order assignments (and their owner trees) once and evaluates
//! them against the four processor-order machines.

use crate::args::Args;
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::report::Table;
use sfc_core::{Assignment, Machine, Stats};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::{DistributionKind, Workload};
use sfc_topology::TopologyKind;

/// Results of the 4 × 4 curve-pair grid for one distribution:
/// `values[processor_curve][particle_curve]`.
#[derive(Debug, Clone)]
pub struct CurvePairGrid {
    /// The input distribution the grid was measured under.
    pub distribution: DistributionKind,
    /// Near-field ACD (Table I).
    pub nfi: [[Stats; 4]; 4],
    /// Far-field ACD (Table II).
    pub ffi: [[Stats; 4]; 4],
}

/// Run the Table I/II experiment for every distribution.
pub fn run_tables(args: &Args) -> Vec<CurvePairGrid> {
    DistributionKind::ALL
        .iter()
        .map(|&dist| run_distribution(dist, args))
        .collect()
}

/// Run the 4 × 4 grid for one distribution.
pub fn run_distribution(dist: DistributionKind, args: &Args) -> CurvePairGrid {
    let workload = Workload::tables_1_2(dist, args.seed).scaled_down(args.scale);
    let num_procs = (65_536u64 >> (2 * args.scale)).max(4);
    let machines: Vec<Machine> = CurveKind::PAPER
        .iter()
        .map(|&proc_curve| Machine::new(TopologyKind::Torus, num_procs, proc_curve))
        .collect();

    let mut nfi_samples = vec![vec![Vec::new(); 4]; 4];
    let mut ffi_samples = vec![vec![Vec::new(); 4]; 4];
    for t in 0..args.trials {
        let particles = workload.particles(t);
        for (pi, &particle_curve) in CurveKind::PAPER.iter().enumerate() {
            let asg = Assignment::new(&particles, workload.grid_order, particle_curve, num_procs);
            let tree = OwnerTree::build(&asg);
            for (ri, machine) in machines.iter().enumerate() {
                let nfi = nfi_acd(&asg, machine, 1, Norm::Chebyshev);
                let ffi = ffi_acd_with_tree(&asg, machine, &tree);
                nfi_samples[ri][pi].push(nfi.acd());
                ffi_samples[ri][pi].push(ffi.acd());
            }
        }
    }

    let collect = |samples: &Vec<Vec<Vec<f64>>>| -> [[Stats; 4]; 4] {
        std::array::from_fn(|ri| std::array::from_fn(|pi| Stats::from_samples(&samples[ri][pi])))
    };
    CurvePairGrid {
        distribution: dist,
        nfi: collect(&nfi_samples),
        ffi: collect(&ffi_samples),
    }
}

/// Which of the two tables to render from a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// Table I: near-field.
    NearField,
    /// Table II: far-field.
    FarField,
}

/// Render one distribution's grid in the paper's layout (rows = processor
/// order, columns = particle order). The lowest value in each row is marked
/// `*` and the lowest in each column `†`, mirroring the paper's boldface and
/// italics.
pub fn render_grid(grid: &CurvePairGrid, which: Interaction) -> Table {
    let (name, values) = match which {
        Interaction::NearField => ("Table I (NFI)", &grid.nfi),
        Interaction::FarField => ("Table II (FFI)", &grid.ffi),
    };
    let title = format!("{name} — {} Distribution", grid.distribution);
    let mut header = vec!["Processor Order \\ Particle Order"];
    header.extend(CurveKind::PAPER.iter().map(|c| c.name()));
    let mut table = Table::new(title, &header);

    let means: Vec<Vec<f64>> = (0..4)
        .map(|r| (0..4).map(|p| values[r][p].mean).collect())
        .collect();
    let row_min: Vec<f64> = means
        .iter()
        .map(|row| row.iter().copied().fold(f64::INFINITY, f64::min))
        .collect();
    let col_min: Vec<f64> = (0..4)
        .map(|p| means.iter().map(|row| row[p]).fold(f64::INFINITY, f64::min))
        .collect();

    for (r, &proc_curve) in CurveKind::PAPER.iter().enumerate() {
        let mut cells = vec![proc_curve.name().to_string()];
        for p in 0..4 {
            let v = means[r][p];
            let mut s = format!("{v:.3}");
            if v == row_min[r] {
                s.push('*');
            }
            if v == col_min[p] {
                s.push('†');
            }
            cells.push(s);
        }
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            scale: 4, // 64x64 grid, ~976 particles, 256 processors
            trials: 2,
            seed: 99,
            markdown: false,
            json: None,
        }
    }

    #[test]
    fn grid_has_full_shape_and_sane_values() {
        let grid = run_distribution(DistributionKind::Uniform, &tiny_args());
        for r in 0..4 {
            for p in 0..4 {
                assert_eq!(grid.nfi[r][p].n, 2);
                assert!(grid.nfi[r][p].mean >= 0.0);
                assert!(grid.ffi[r][p].mean > 0.0);
            }
        }
    }

    #[test]
    fn hilbert_pair_beats_row_major_pair() {
        // The diagonal comparison the paper's conclusions rest on.
        let grid = run_distribution(DistributionKind::Uniform, &tiny_args());
        assert!(grid.nfi[0][0].mean < grid.nfi[3][3].mean);
        assert!(grid.ffi[0][0].mean < grid.ffi[3][3].mean);
    }

    #[test]
    fn render_marks_minima() {
        let grid = run_distribution(DistributionKind::Exponential, &tiny_args());
        let text = render_grid(&grid, Interaction::NearField).render();
        assert!(text.contains('*'));
        assert!(text.contains('†'));
        assert!(text.contains("Exponential"));
        let ffi_text = render_grid(&grid, Interaction::FarField).render();
        assert!(ffi_text.contains("Table II"));
    }

    #[test]
    fn results_reproducible_across_runs() {
        let a = run_distribution(DistributionKind::Normal, &tiny_args());
        let b = run_distribution(DistributionKind::Normal, &tiny_args());
        assert_eq!(a.nfi[2][1].mean, b.nfi[2][1].mean);
        assert_eq!(a.ffi[1][3].mean, b.ffi[1][3].mean);
    }
}
