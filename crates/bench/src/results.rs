//! Machine-readable export of regeneration results.
//!
//! Every binary accepts `--json <path>` and writes its artifact as one JSON
//! document with a common envelope (`artifact`, `config`, `cells`, `data`),
//! so runs can be diffed, archived, or fed to plotting scripts without
//! scraping the text tables.
//!
//! The `cells` section carries the fault-tolerance accounting: cells that
//! failed after retries (as structured errors) and cells skipped by a spent
//! `--time-budget`. Both arrays are empty for a complete run, and the
//! envelope deliberately excludes computed/replayed counts, so the artifact
//! of a resumed sweep is byte-identical to an uninterrupted one.

use crate::args::SweepArgs;
use crate::figures::{AnnsSweep, ProcessorSweep, TopologySweep};
use crate::tables::CurvePairGrid;
use serde_json::{json, Value};
use sfc_core::runner::SweepSummary;
use sfc_core::{ExperimentSpec, MetricsRegistry, Stats};
use sfc_curves::CurveKind;
use std::sync::OnceLock;

/// The bench process's metrics registry: dense-grid build accounting
/// surfaced both in the `--timing` envelope and (for embedders) through the
/// same [`MetricsRegistry`] interface `sfc-serve` exposes.
pub fn bench_registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Refresh the registry's dense-grid gauges from the process-wide counters
/// and return the pair `(dense_builds, cellmap_fallbacks)`.
fn grid_index_gauges() -> (u64, u64) {
    let registry = bench_registry();
    let builds = registry.gauge(
        "sfc_bench_dense_grid_builds",
        "Assignments built with the dense occupancy index this process",
    );
    let fallbacks = registry.gauge(
        "sfc_bench_cellmap_fallbacks",
        "Assignments that fell back to the sparse cell map this process",
    );
    builds.set(sfc_core::assignment::dense_grid_builds());
    fallbacks.set(sfc_core::assignment::cellmap_fallbacks());
    (builds.get(), fallbacks.get())
}

fn stats_json(s: &Option<Stats>) -> Value {
    match s {
        Some(s) => json!({
            "mean": s.mean,
            "std_dev": s.std_dev,
            "min": s.min,
            "max": s.max,
            "trials": s.n,
        }),
        None => Value::Null,
    }
}

fn config_json(spec: &ExperimentSpec) -> Value {
    json!({
        "scale": spec.scale,
        "trials": spec.trials,
        "seed": spec.seed,
    })
}

fn cells_json(summary: &SweepSummary) -> Value {
    let failed: Vec<Value> = summary
        .failed
        .iter()
        .map(|f| {
            json!({
                "cell": f.cell,
                "error": f.error,
                "attempts": f.attempts,
            })
        })
        .collect();
    json!({
        "failed": failed,
        "skipped": summary.skipped,
        "journal_degraded": summary.journal_degraded,
    })
}

/// Common envelope for one exported artifact. The `config` section reports
/// the spec's scale/trials/seed, so a cache replay and a fresh run of the
/// same spec serialize identically.
pub fn envelope(artifact: &str, spec: &ExperimentSpec, summary: &SweepSummary, data: Value) -> Value {
    json!({
        "artifact": artifact,
        "paper": "DeFord & Kalyanaraman, ICPP 2013",
        "config": config_json(spec),
        "cells": cells_json(summary),
        "data": data,
    })
}

/// The `data` section of a Table I/II curve-pair grid export.
pub fn grid_data(grids: &[CurvePairGrid]) -> Value {
    let data: Vec<Value> = grids
        .iter()
        .map(|g| {
            let block = |values: &[[Option<Stats>; 4]; 4]| -> Value {
                let rows: Vec<Value> = CurveKind::PAPER
                    .iter()
                    .enumerate()
                    .map(|(r, proc_curve)| {
                        let cols: Vec<Value> = CurveKind::PAPER
                            .iter()
                            .enumerate()
                            .map(|(p, part_curve)| {
                                json!({
                                    "particle_curve": part_curve.short_name(),
                                    "acd": stats_json(&values[r][p]),
                                })
                            })
                            .collect();
                        json!({
                            "processor_curve": proc_curve.short_name(),
                            "cells": cols,
                        })
                    })
                    .collect();
                json!(rows)
            };
            json!({
                "distribution": g.distribution.name(),
                "nfi": block(&g.nfi),
                "ffi": block(&g.ffi),
            })
        })
        .collect();
    json!(data)
}

/// The `data` section of a Figure 5 ANNS sweep export.
pub fn anns_data(sweeps: &[AnnsSweep]) -> Value {
    let data: Vec<Value> = sweeps
        .iter()
        .map(|s| {
            let series: Vec<Value> = CurveKind::PAPER
                .iter()
                .enumerate()
                .map(|(c, curve)| {
                    json!({
                        "curve": curve.short_name(),
                        "values": s.values[c],
                    })
                })
                .collect();
            json!({
                "radius": s.radius,
                "orders": s.orders,
                "series": series,
            })
        })
        .collect();
    json!(data)
}

/// The `data` section of a Figure 6 topology sweep export.
pub fn topology_data(sweep: &TopologySweep) -> Value {
    let block = |data: &Vec<Vec<Option<Stats>>>| -> Value {
        let rows: Vec<Value> = sweep
            .topologies
            .iter()
            .enumerate()
            .map(|(t, topo)| {
                let by_curve: Vec<Value> = CurveKind::PAPER
                    .iter()
                    .enumerate()
                    .map(|(c, curve)| {
                        json!({
                            "curve": curve.short_name(),
                            "acd": stats_json(&data[t][c]),
                        })
                    })
                    .collect();
                json!({ "topology": topo.name(), "series": by_curve })
            })
            .collect();
        json!(rows)
    };
    json!({ "nfi": block(&sweep.nfi), "ffi": block(&sweep.ffi) })
}

/// The `data` section of a Figure 7 processor sweep export.
pub fn processors_data(sweep: &ProcessorSweep) -> Value {
    let block = |data: &Vec<Vec<Option<Stats>>>| -> Value {
        let rows: Vec<Value> = sweep
            .processors
            .iter()
            .enumerate()
            .map(|(p, procs)| {
                let by_curve: Vec<Value> = CurveKind::PAPER
                    .iter()
                    .enumerate()
                    .map(|(c, curve)| {
                        json!({
                            "curve": curve.short_name(),
                            "acd": stats_json(&data[p][c]),
                        })
                    })
                    .collect();
                json!({ "processors": procs, "series": by_curve })
            })
            .collect();
        json!(rows)
    };
    json!({ "nfi": block(&sweep.nfi), "ffi": block(&sweep.ffi) })
}

/// Export the per-cell timing envelope for one run: wall-clock and phase
/// breakdown (sample / assign / nfi / ffi, or whatever phases the sweep
/// recorded) for every cell **computed this run**, in submission order.
/// Replayed, failed and skipped cells carry no timing. This is written to
/// the separate `--timing` path, never merged into the `--json` artifact:
/// the artifact must stay byte-identical between runs, and wall-clock
/// measurements are not.
pub fn timing_json(artifact: &str, args: &SweepArgs, summary: &SweepSummary) -> Value {
    let cells: Vec<Value> = summary
        .timings
        .iter()
        .map(|(name, t)| {
            let phases: Vec<Value> = t
                .phases
                .iter()
                .map(|(phase, ms)| json!({ "phase": phase, "ms": ms }))
                .collect();
            json!({
                "cell": name,
                "wall_ms": t.wall_ms,
                "phases": phases,
            })
        })
        .collect();
    let (dense_builds, cellmap_fallbacks) = grid_index_gauges();
    json!({
        "artifact": format!("{artifact}-timing"),
        "paper": "DeFord & Kalyanaraman, ICPP 2013",
        "config": json!({
            "scale": args.scale,
            "trials": args.trials,
            "seed": args.seed,
        }),
        "jobs": args.jobs,
        "rayon_threads": rayon::current_num_threads() as u64,
        "oracle": !args.no_oracle,
        "dense_grid": !args.no_dense_grid,
        "grid_index": json!({
            "dense_builds": dense_builds,
            "cellmap_fallbacks": cellmap_fallbacks,
        }),
        "cells": cells,
    })
}

/// The `data` section of any rendered [`sfc_core::report::Table`] list
/// (the `parametric` and `extensions` artifacts are plain tables).
pub fn tables_data(tables: &[sfc_core::report::Table]) -> Value {
    let data: Vec<Value> = tables
        .iter()
        .map(|t| {
            json!({
                "title": t.title(),
                "header": t.header(),
                "rows": t.rows(),
            })
        })
        .collect();
    json!(data)
}

/// Write a JSON document to `path` (pretty-printed).
pub fn write_json(path: &str, value: &Value) -> std::io::Result<()> {
    std::fs::write(path, serde_json::to_string_pretty(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ComputeOpts;
    use crate::figures::run_anns_sweep;
    use crate::tables::run_distribution;
    use sfc_core::runner::{FailedCell, SweepRunner};
    use sfc_particles::DistributionKind;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::table1(4, 1, 5)
    }

    fn tiny_args() -> SweepArgs {
        SweepArgs {
            scale: 4,
            trials: 1,
            seed: 5,
            ..SweepArgs::default()
        }
    }

    fn done() -> SweepSummary {
        SweepSummary::default()
    }

    #[test]
    fn grid_export_shape() {
        let spec = tiny_spec();
        let grid = run_distribution(
            DistributionKind::Uniform.default_params(),
            &spec,
            &ComputeOpts::default(),
            &mut SweepRunner::ephemeral(),
        );
        let v = envelope("table1", &spec, &done(), grid_data(&[grid]));
        assert_eq!(v["artifact"], "table1");
        assert_eq!(v["config"]["scale"], 4);
        let rows = v["data"][0]["nfi"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0]["cells"].as_array().unwrap().len(), 4);
        let acd = &rows[0]["cells"][0]["acd"];
        assert!(acd["mean"].as_f64().unwrap() >= 0.0);
        assert_eq!(acd["trials"], 1);
        assert_eq!(v["cells"]["failed"].as_array().unwrap().len(), 0);
        assert_eq!(v["cells"]["skipped"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn anns_export_shape() {
        let sweep = run_anns_sweep(1, &[1, 2, 3, 4], &mut SweepRunner::ephemeral());
        let v = envelope("figure5", &tiny_spec(), &done(), anns_data(&[sweep]));
        let series = v["data"][0]["series"].as_array().unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0]["values"].as_array().unwrap().len(), 4);
        assert_eq!(series[0]["curve"], "Hilbert");
    }

    #[test]
    fn export_round_trips_through_parser() {
        let sweep = run_anns_sweep(1, &[1, 2, 3], &mut SweepRunner::ephemeral());
        let v = envelope("figure5", &tiny_spec(), &done(), anns_data(&[sweep]));
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn generic_table_export() {
        let mut t = sfc_core::report::Table::new("Demo", &["A", "B"]);
        t.push_numeric_row("x", &[1.5]);
        let v = envelope("parametric", &tiny_spec(), &done(), tables_data(&[t]));
        assert_eq!(v["artifact"], "parametric");
        assert_eq!(v["data"][0]["title"], "Demo");
        assert_eq!(v["data"][0]["rows"][0][1], "1.500");
    }

    #[test]
    fn failed_and_skipped_cells_reach_the_envelope() {
        let summary = SweepSummary {
            computed: 1,
            replayed: 0,
            failed: vec![FailedCell {
                cell: "Uniform/t0/Hilbert".into(),
                error: "chaos injection".into(),
                attempts: 3,
            }],
            skipped: vec!["Uniform/t1/Z".into()],
            journal_degraded: true,
            ..SweepSummary::default()
        };
        let v = envelope("table1", &tiny_spec(), &summary, json!([]));
        assert_eq!(v["cells"]["failed"][0]["cell"], "Uniform/t0/Hilbert");
        assert_eq!(v["cells"]["failed"][0]["attempts"], 3);
        assert_eq!(v["cells"]["skipped"][0], "Uniform/t1/Z");
        assert_eq!(v["cells"]["journal_degraded"], true);
        // Counts stay out of the envelope: a resumed complete run must be
        // byte-identical to an uninterrupted one.
        assert_eq!(v["cells"]["computed"], Value::Null);
        assert_eq!(v["cells"]["replayed"], Value::Null);
    }

    #[test]
    fn timing_envelope_lists_computed_cells_in_order() {
        let args = tiny_args();
        let mut summary = SweepSummary::default();
        summary.timings.push((
            "Uniform/t0/H".into(),
            sfc_core::CellTiming {
                wall_ms: 12.5,
                phases: vec![("sample".into(), 3.0), ("nfi".into(), 7.25)],
            },
        ));
        summary.timings.push((
            "Uniform/t0/Z".into(),
            sfc_core::CellTiming { wall_ms: 9.0, phases: vec![] },
        ));
        let v = timing_json("table1", &args, &summary);
        assert_eq!(v["artifact"], "table1-timing");
        assert_eq!(v["oracle"], true);
        assert_eq!(v["dense_grid"], true);
        assert!(v["grid_index"]["dense_builds"].as_u64().is_some());
        assert!(v["grid_index"]["cellmap_fallbacks"].as_u64().is_some());
        let cells = v["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0]["cell"], "Uniform/t0/H");
        assert_eq!(cells[0]["wall_ms"], 12.5);
        assert_eq!(cells[0]["phases"][1]["phase"], "nfi");
        assert_eq!(cells[0]["phases"][1]["ms"], 7.25);
        assert_eq!(cells[1]["cell"], "Uniform/t0/Z");
    }

    #[test]
    fn bench_registry_exports_grid_index_gauges() {
        // timing_json refreshes the gauges from the process-wide counters;
        // after one call both series scrape through the shared registry.
        let _ = timing_json("table1", &tiny_args(), &SweepSummary::default());
        let text = bench_registry().render_prometheus();
        assert!(text.contains("sfc_bench_dense_grid_builds"), "{text}");
        assert!(text.contains("sfc_bench_cellmap_fallbacks"), "{text}");
    }

    #[test]
    fn missing_stats_export_as_null() {
        assert_eq!(stats_json(&None), Value::Null);
    }

    #[test]
    fn write_json_creates_file() {
        let sweep = run_anns_sweep(1, &[1, 2], &mut SweepRunner::ephemeral());
        let v = envelope("figure5", &tiny_spec(), &done(), anns_data(&[sweep]));
        let path = std::env::temp_dir().join("sfc_bench_results_test.json");
        write_json(path.to_str().unwrap(), &v).unwrap();
        let read: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(read["artifact"], "figure5");
        std::fs::remove_file(path).ok();
    }
}
