//! End-to-end tests of `--cache`: a repeat invocation must recompute
//! nothing and reproduce the first invocation's artifacts byte for byte.

use std::path::PathBuf;
use std::process::Command;

fn run_table1(cache: &str, json: &str, extra: &[&str]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    // Scale 9: a 2x2 grid with one particle — the cheapest complete run.
    cmd.args(["--scale", "9", "--trials", "1", "--cache", cache, "--json", json]);
    cmd.args(extra);
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-cache-e2e-{name}-{}", std::process::id()))
}

#[test]
fn repeat_run_replays_bytes_and_computes_zero_cells() {
    let cache = tmp("dir");
    let _ = std::fs::remove_dir_all(&cache);
    let cache_str = cache.to_str().unwrap().to_string();
    let j1 = tmp("first.json");
    let j2 = tmp("second.json");

    let (out1, err1, ok1) = run_table1(&cache_str, j1.to_str().unwrap(), &[]);
    assert!(ok1, "{err1}");
    assert!(err1.contains("12 cell(s) computed"), "{err1}");
    assert!(err1.contains("stored"), "{err1}");

    let (out2, err2, ok2) = run_table1(&cache_str, j2.to_str().unwrap(), &[]);
    assert!(ok2, "{err2}");
    assert!(
        err2.contains("0 cell(s) computed, artifact replayed from cache"),
        "{err2}"
    );
    assert!(!err2.contains("sweep"), "a cache hit must not run a sweep: {err2}");
    assert_eq!(out1, out2, "replayed stdout must be byte-identical");
    let json1 = std::fs::read(&j1).unwrap();
    let json2 = std::fs::read(&j2).unwrap();
    assert_eq!(json1, json2, "replayed JSON must be byte-identical");

    // The markdown stream replays from the same entry.
    let j3 = tmp("third.json");
    let (out3, err3, ok3) = run_table1(&cache_str, j3.to_str().unwrap(), &["--markdown"]);
    assert!(ok3);
    assert!(err3.contains("replayed from cache"), "{err3}");
    assert_ne!(out3, out2);
    assert!(out3.contains('|'));

    std::fs::remove_dir_all(&cache).ok();
    for p in [j1, j2, j3] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sabotaged_runs_are_never_cached() {
    let cache = tmp("chaos");
    let _ = std::fs::remove_dir_all(&cache);
    let cache_str = cache.to_str().unwrap().to_string();
    let j = tmp("chaos.json");

    // Persistent chaos fails cells: the artifact is partial, so the run
    // must not populate the cache.
    let (_, err, ok) = run_table1(
        &cache_str,
        j.to_str().unwrap(),
        &["--chaos", "/Hilbert", "--chaos-persistent"],
    );
    assert!(ok, "{err}");
    assert!(err.contains("not stored"), "{err}");

    // The next (healthy) run misses and computes.
    let (_, err2, ok2) = run_table1(&cache_str, j.to_str().unwrap(), &[]);
    assert!(ok2);
    assert!(err2.contains("12 cell(s) computed"), "{err2}");
    assert!(err2.contains("stored"), "{err2}");

    std::fs::remove_dir_all(&cache).ok();
    std::fs::remove_file(j).ok();
}
