//! End-to-end tests of the regeneration binaries: run the actual
//! executables at tiny scale and check their output and JSON artifacts.

use std::process::Command;

fn run(bin: &str, extra: &[&str]) -> (String, String, bool) {
    let exe = match bin {
        "table1" => env!("CARGO_BIN_EXE_table1"),
        "table2" => env!("CARGO_BIN_EXE_table2"),
        "fig6" => env!("CARGO_BIN_EXE_fig6"),
        "fig7" => env!("CARGO_BIN_EXE_fig7"),
        "parametric" => env!("CARGO_BIN_EXE_parametric"),
        other => panic!("unknown binary {other}"),
    };
    let mut cmd = Command::new(exe);
    cmd.args(extra);
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const TINY: &[&str] = &["--scale", "5", "--trials", "1"];

#[test]
fn table1_prints_all_three_distributions() {
    let (stdout, _, ok) = run("table1", TINY);
    assert!(ok);
    for needle in ["Uniform", "Normal", "Exponential", "Hilbert Curve", "Row Major"] {
        assert!(stdout.contains(needle), "missing {needle}\n{stdout}");
    }
    // 3 blocks x 4 rows of data.
    assert_eq!(stdout.matches("Table I (NFI)").count(), 3);
}

#[test]
fn table2_reports_ffi() {
    let (stdout, _, ok) = run("table2", TINY);
    assert!(ok);
    assert_eq!(stdout.matches("Table II (FFI)").count(), 3);
}

#[test]
fn fig6_lists_all_six_topologies() {
    let (stdout, _, ok) = run("fig6", TINY);
    assert!(ok);
    for topo in ["Bus", "Ring", "Mesh", "Torus", "Quadtree", "Hypercube"] {
        assert!(stdout.contains(topo), "missing {topo}");
    }
}

#[test]
fn fig7_sweeps_processors() {
    let (stdout, _, ok) = run("fig7", TINY);
    assert!(ok);
    assert!(stdout.contains("Processors"));
    assert!(stdout.contains("Near-Field") && stdout.contains("Far-Field"));
}

#[test]
fn json_flag_writes_valid_artifact() {
    let path = std::env::temp_dir().join("sfc_cli_test_table1.json");
    let path_str = path.to_str().unwrap();
    let mut args = TINY.to_vec();
    args.extend(["--json", path_str]);
    let (_, _, ok) = run("table1", &args);
    assert!(ok);
    let text = std::fs::read_to_string(&path).expect("JSON written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["artifact"], "table1");
    assert_eq!(v["config"]["scale"], 5);
    assert_eq!(v["data"].as_array().unwrap().len(), 3);
    std::fs::remove_file(path).ok();
}

#[test]
fn markdown_flag_switches_format() {
    let mut args = TINY.to_vec();
    args.push("--markdown");
    let (stdout, _, ok) = run("parametric", &args);
    assert!(ok);
    assert!(stdout.contains("| --- |"), "no markdown tables:\n{stdout}");
}

#[test]
fn bad_flag_exits_with_usage() {
    let (_, stderr, ok) = run("table1", &["--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn no_oracle_artifact_is_byte_identical() {
    // The hop-distance oracle is a pure accelerator: disabling it must not
    // change a single byte of stdout or the JSON artifact.
    let dir = std::env::temp_dir();
    let with = dir.join("sfc_cli_oracle_on.json");
    let without = dir.join("sfc_cli_oracle_off.json");
    let mut args_on = TINY.to_vec();
    args_on.extend(["--json", with.to_str().unwrap()]);
    let (stdout_on, _, ok_on) = run("table1", &args_on);
    let mut args_off = TINY.to_vec();
    args_off.extend(["--json", without.to_str().unwrap(), "--no-oracle"]);
    let (stdout_off, _, ok_off) = run("table1", &args_off);
    assert!(ok_on && ok_off);
    assert_eq!(stdout_on, stdout_off);
    assert_eq!(
        std::fs::read(&with).unwrap(),
        std::fs::read(&without).unwrap(),
        "oracle on/off artifacts differ"
    );
    std::fs::remove_file(with).ok();
    std::fs::remove_file(without).ok();
}

#[test]
fn no_dense_grid_artifact_is_byte_identical_at_every_job_count() {
    // Like the oracle, the dense occupancy index is a pure accelerator:
    // ablating it must not change a single byte of stdout or the JSON
    // artifact, at any worker count.
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (tag, extra) in [
        ("dense_j1", vec!["--jobs", "1"]),
        ("dense_j4", vec!["--jobs", "4"]),
        ("sparse_j1", vec!["--jobs", "1", "--no-dense-grid"]),
        ("sparse_j4", vec!["--jobs", "4", "--no-dense-grid"]),
    ] {
        let path = dir.join(format!("sfc_cli_grid_{tag}.json"));
        let mut args = TINY.to_vec();
        args.extend(["--json", path.to_str().unwrap()]);
        args.extend(extra);
        let (stdout, _, ok) = run("table1", &args);
        assert!(ok, "{tag} run failed");
        let json = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).ok();
        outputs.push((tag, stdout, json));
    }
    let (_, stdout0, json0) = &outputs[0];
    for (tag, stdout, json) in &outputs[1..] {
        assert_eq!(stdout, stdout0, "{tag} stdout differs");
        assert_eq!(json, json0, "{tag} artifact differs");
    }
}

#[test]
fn timing_flag_writes_phase_envelope_and_leaves_artifact_alone() {
    let dir = std::env::temp_dir();
    let artifact = dir.join("sfc_cli_timed_artifact.json");
    let plain = dir.join("sfc_cli_plain_artifact.json");
    let timing = dir.join("sfc_cli_timing.json");
    let mut args_plain = TINY.to_vec();
    args_plain.extend(["--json", plain.to_str().unwrap()]);
    let (_, _, ok) = run("table1", &args_plain);
    assert!(ok);
    let mut args_timed = TINY.to_vec();
    args_timed.extend([
        "--json",
        artifact.to_str().unwrap(),
        "--timing",
        timing.to_str().unwrap(),
    ]);
    let (_, _, ok) = run("table1", &args_timed);
    assert!(ok);
    // `--timing` must not perturb the deterministic artifact.
    assert_eq!(std::fs::read(&plain).unwrap(), std::fs::read(&artifact).unwrap());
    let text = std::fs::read_to_string(&timing).expect("timing envelope written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["artifact"], "table1-timing");
    assert_eq!(v["oracle"], true);
    assert_eq!(v["dense_grid"], true);
    assert!(v["grid_index"]["dense_builds"].as_u64().unwrap() >= 12);
    assert_eq!(v["grid_index"]["cellmap_fallbacks"].as_u64().unwrap(), 0);
    let cells = v["cells"].as_array().unwrap();
    assert_eq!(cells.len(), 12); // 3 distributions x 1 trial x 4 curves
    for cell in cells {
        assert!(cell["wall_ms"].as_f64().unwrap() > 0.0);
        let phases: Vec<&str> = cell["phases"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p["phase"].as_str().unwrap())
            .collect();
        assert_eq!(phases, ["sample", "assign", "index", "nfi", "ffi"]);
        assert!(cell["phases"]
            .as_array()
            .unwrap()
            .iter()
            .any(|p| p["ms"].as_f64().unwrap() > 0.0));
    }
    std::fs::remove_file(plain).ok();
    std::fs::remove_file(artifact).ok();
    std::fs::remove_file(timing).ok();
}
