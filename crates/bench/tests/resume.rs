//! End-to-end interrupt/resume tests: a journaled regeneration interrupted
//! partway — by fault injection or by journal truncation — must, once
//! resumed, write a JSON artifact byte-identical to an uninterrupted run's.

use std::path::PathBuf;
use std::process::Command;

const TINY: &[&str] = &["--scale", "5", "--trials", "2", "--seed", "11"];

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc_resume_{}_{name}", std::process::id()))
}

/// Run the `table1` binary with the tiny config plus `extra`; returns
/// (stdout, stderr, success).
fn run_table1(extra: &[&str]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.args(TINY).args(extra);
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Uninterrupted no-journal artifact — the reference everything must match.
fn baseline(tag: &str) -> Vec<u8> {
    let json = tmp(&format!("{tag}_baseline.json"));
    let (_, _, ok) = run_table1(&["--json", json.to_str().unwrap()]);
    assert!(ok);
    let bytes = std::fs::read(&json).unwrap();
    std::fs::remove_file(&json).ok();
    bytes
}

#[test]
fn fresh_journaled_run_matches_plain_run() {
    let journal = tmp("fresh.jsonl");
    let json = tmp("fresh.json");
    std::fs::remove_file(&journal).ok();

    let (stdout_plain, _, ok) = run_table1(&[]);
    assert!(ok);
    let (stdout_journaled, stderr, ok) = run_table1(&[
        "--journal",
        journal.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok);
    // stdout identical; the journal accounting goes to stderr only.
    assert_eq!(stdout_plain, stdout_journaled);
    assert!(stderr.contains("24 cell(s) computed"), "stderr: {stderr}");
    assert_eq!(std::fs::read(&json).unwrap(), baseline("fresh"));
    // 3 distributions x 2 trials x 4 curves cells + 1 header line.
    let lines = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines, 25);

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&json).ok();
}

fn resume_after_truncation(tag: &str, truncate: impl Fn(&[u8]) -> usize) {
    let journal = tmp(&format!("{tag}.jsonl"));
    let json = tmp(&format!("{tag}.json"));
    std::fs::remove_file(&journal).ok();

    // Complete run to populate the journal, then "crash" it partway.
    let (_, _, ok) = run_table1(&["--journal", journal.to_str().unwrap()]);
    assert!(ok);
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..truncate(&bytes)]).unwrap();

    // Resume: replays the surviving cells, recomputes the rest.
    let (_, stderr, ok) = run_table1(&[
        "--journal",
        journal.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stderr.contains("replayed from journal"), "stderr: {stderr}");
    assert_eq!(
        std::fs::read(&json).unwrap(),
        baseline(tag),
        "resumed artifact differs from uninterrupted run"
    );

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn resume_after_truncation_at_cell_boundary() {
    // Keep the header and the first 7 complete cell records.
    resume_after_truncation("boundary", |bytes| {
        let mut newlines = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                newlines += 1;
                if newlines == 8 {
                    return i + 1;
                }
            }
        }
        unreachable!("journal has at least 8 lines")
    });
}

#[test]
fn resume_after_truncation_mid_line() {
    // Cut a partially-written record in half: the torn tail must be
    // dropped, not parsed.
    resume_after_truncation("midline", |bytes| bytes.len() - 40);
}

#[test]
fn transient_fault_is_retried_and_invisible_in_the_artifact() {
    let json = tmp("chaos_once.json");
    // Sabotage the first attempt of every Normal-distribution cell; the
    // bounded retry recomputes them.
    let (_, stderr, ok) = run_table1(&[
        "--chaos",
        "Normal/",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(std::fs::read(&json).unwrap(), baseline("chaos_once"));
    std::fs::remove_file(&json).ok();
}

#[test]
fn persistent_fault_becomes_structured_error_without_aborting() {
    let json = tmp("chaos_hard.json");
    let (stdout, stderr, ok) = run_table1(&[
        "--chaos",
        "Normal/t0/Hilbert",
        "--chaos-persistent",
        "--json",
        json.to_str().unwrap(),
    ]);
    // The sweep completes and reports the failure as data, not a crash.
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("FAILED after 3 attempt(s)"), "stderr: {stderr}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let failed = v["cells"]["failed"].as_array().unwrap();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0]["cell"], "Normal/t0/Hilbert");
    assert_eq!(failed[0]["error"], "chaos injection");
    assert_eq!(failed[0]["attempts"], 3);
    // The other 23 cells still produced data: trial 1 covers the Hilbert
    // column, so every grid entry is present (with fewer samples where the
    // failed cell would have contributed).
    let hilbert_acd = &v["data"][1]["nfi"][0]["cells"][0]["acd"];
    assert_eq!(hilbert_acd["trials"], 1);
    assert!(stdout.contains("Table I"));
    std::fs::remove_file(&json).ok();
}

#[test]
fn exhausted_time_budget_skips_then_resumes_to_identical_artifact() {
    let journal = tmp("budget.jsonl");
    let json = tmp("budget.json");
    std::fs::remove_file(&journal).ok();

    // A zero budget starts no cells: everything is reported missing.
    let (_, stderr, ok) = run_table1(&[
        "--journal",
        journal.to_str().unwrap(),
        "--time-budget",
        "0",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stderr.contains("time budget exhausted"), "stderr: {stderr}");
    assert!(stderr.contains("missing Uniform/t0/Hilbert"), "stderr: {stderr}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(v["cells"]["skipped"].as_array().unwrap().len(), 24);
    assert!(v["data"][0]["nfi"][0]["cells"][0]["acd"].is_null());

    // Resuming without the budget computes everything; the artifact matches
    // an uninterrupted run byte for byte.
    let (_, _, ok) = run_table1(&[
        "--journal",
        journal.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok);
    assert_eq!(std::fs::read(&json).unwrap(), baseline("budget"));

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let json1 = tmp("jobs1.json");
    let json8 = tmp("jobs8.json");

    let (stdout1, _, ok) = run_table1(&["--jobs", "1", "--json", json1.to_str().unwrap()]);
    assert!(ok);
    let (stdout8, _, ok) = run_table1(&["--jobs", "8", "--json", json8.to_str().unwrap()]);
    assert!(ok);

    assert_eq!(stdout1, stdout8, "stdout differs between --jobs 1 and --jobs 8");
    assert_eq!(
        std::fs::read(&json1).unwrap(),
        std::fs::read(&json8).unwrap(),
        "JSON artifact differs between --jobs 1 and --jobs 8"
    );

    std::fs::remove_file(&json1).ok();
    std::fs::remove_file(&json8).ok();
}

#[test]
fn parallel_run_under_chaos_matches_serial() {
    // Retries and failure accounting must stay deterministic on a pool:
    // transient faults retried on worker threads leave no trace, and the
    // artifact still matches the serial run byte for byte.
    let json1 = tmp("chaos_jobs1.json");
    let json8 = tmp("chaos_jobs8.json");

    let chaos = &["--chaos", "Normal/"];
    let (_, _, ok) =
        run_table1(&[chaos, &["--jobs", "1", "--json", json1.to_str().unwrap()][..]].concat());
    assert!(ok);
    let (_, _, ok) =
        run_table1(&[chaos, &["--jobs", "8", "--json", json8.to_str().unwrap()][..]].concat());
    assert!(ok);

    let bytes1 = std::fs::read(&json1).unwrap();
    assert_eq!(bytes1, std::fs::read(&json8).unwrap());
    assert_eq!(bytes1, baseline("chaos_jobs"));

    std::fs::remove_file(&json1).ok();
    std::fs::remove_file(&json8).ok();
}

#[test]
fn parallel_journal_resumes_serially_after_truncation() {
    let journal = tmp("xjobs.jsonl");
    let json = tmp("xjobs.json");
    std::fs::remove_file(&journal).ok();

    // Journal a full run on 8 workers, then tear the tail mid-line.
    let (_, _, ok) = run_table1(&["--jobs", "8", "--journal", journal.to_str().unwrap()]);
    assert!(ok);
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 40]).unwrap();

    // Resume on 1 worker: replays the surviving cells, recomputes the torn
    // ones, and the artifact matches an uninterrupted run byte for byte.
    let (_, stderr, ok) = run_table1(&[
        "--jobs",
        "1",
        "--journal",
        journal.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stderr.contains("replayed from journal"), "stderr: {stderr}");
    assert_eq!(std::fs::read(&json).unwrap(), baseline("xjobs"));

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn degraded_journal_is_reported_not_swallowed() {
    let journal = tmp("degraded.jsonl");
    let json = tmp("degraded.json");
    std::fs::remove_file(&journal).ok();

    // Fail every journal write after the first 20 (of 24 cells). The first
    // three failures degrade the journal; the fourth cell finds it dead and
    // becomes a structured failure instead of silently losing its record.
    let (_, stderr, ok) = run_table1(&[
        "--jobs",
        "1",
        "--journal",
        journal.to_str().unwrap(),
        "--chaos-journal",
        "20",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("JOURNAL DEGRADED"), "stderr: {stderr}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(v["cells"]["journal_degraded"], true);
    let failed = v["cells"]["failed"].as_array().unwrap();
    assert_eq!(failed.len(), 1, "failed: {failed:?}");
    assert!(
        failed[0]["error"].as_str().unwrap().contains("journal"),
        "failed: {failed:?}"
    );

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn journal_from_other_config_is_rejected() {
    let journal = tmp("mismatch.jsonl");
    std::fs::remove_file(&journal).ok();
    let (_, _, ok) = run_table1(&["--journal", journal.to_str().unwrap()]);
    assert!(ok);

    // Different seed, same journal: refuse rather than mix results.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.args(["--scale", "5", "--trials", "2", "--seed", "12"]);
    cmd.args(["--journal", journal.to_str().unwrap()]);
    let out = cmd.output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("journal"), "stderr: {stderr}");

    std::fs::remove_file(&journal).ok();
}
