//! Skilling's n-dimensional Hilbert transform.
//!
//! John Skilling's algorithm (*Programming the Hilbert curve*, AIP Conf.
//! Proc. 707, 2004) maps between axis coordinates and the "transpose" form
//! of the Hilbert index in any number of dimensions, in `O(n · b)` bit
//! operations for `n` dimensions of `b` bits each.
//!
//! In this workspace it serves two purposes:
//!
//! 1. An *independent* implementation of a Hilbert-style curve used by the
//!    test suite to sanity-check structural properties (bijectivity, unit
//!    steps) of the hand-rolled 2-D Hilbert code in [`crate::hilbert`].
//!    Note that Skilling's curve is a different *orientation* of the Hilbert
//!    curve, so indices are not expected to agree bit-for-bit — only the
//!    geometric structure matches.
//! 2. The 3-D Hilbert curve backing [`crate::curve3d::Hilbert3d`], for the
//!    paper's future-work item (ii) on extending the analysis to 3-D.

/// Convert axis coordinates (each `bits` wide) into the Hilbert index.
///
/// Supports any dimension `n ≥ 1` with `n * bits ≤ 63` so the result fits a
/// `u64`.
pub fn axes_to_index(coords: &[u32], bits: u32) -> u64 {
    let n = coords.len();
    assert!(n >= 1, "at least one dimension required");
    assert!(
        (n as u32) * bits <= 63,
        "n * bits = {} exceeds the 63-bit index budget",
        n as u32 * bits
    );
    let mut x: Vec<u32> = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    transpose_to_index(&x, bits)
}

/// Convert a Hilbert index back into axis coordinates.
pub fn index_to_axes(index: u64, bits: u32, dims: usize) -> Vec<u32> {
    assert!(dims >= 1);
    assert!((dims as u32) * bits <= 63);
    let mut x = index_to_transpose(index, bits, dims);
    transpose_to_axes(&mut x, bits);
    x
}

/// In-place conversion from axis coordinates to Skilling's transpose form.
pub fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    if bits == 0 {
        return;
    }
    let m: u32 = 1 << (bits - 1);
    // Inverse undo: peel off the rotations level by level, top-down.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of the first axis
            } else {
                let t = (x[0] ^ x[i]) & p; // exchange low bits of axes 0 and i
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// In-place conversion from Skilling's transpose form to axis coordinates.
pub fn transpose_to_axes(x: &mut [u32], bits: u32) {
    let n = x.len();
    if bits == 0 {
        return;
    }
    let big_n: u32 = 2 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work, bottom-up.
    let mut q: u32 = 2;
    while q != big_n {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack the transpose form into a single linear index: the transpose stores
/// bit `j` of the index (counted from the top) in word `j mod n`, bit
/// `bits - 1 - j / n`.
pub fn transpose_to_index(x: &[u32], bits: u32) -> u64 {
    let n = x.len();
    let mut index: u64 = 0;
    for level in (0..bits).rev() {
        for word in x.iter().take(n) {
            index = (index << 1) | u64::from((word >> level) & 1);
        }
    }
    index
}

/// Inverse of [`transpose_to_index`].
pub fn index_to_transpose(index: u64, bits: u32, dims: usize) -> Vec<u32> {
    let mut x = vec![0u32; dims];
    let total = bits as usize * dims;
    for j in 0..total {
        let bit = (index >> (total - 1 - j)) & 1;
        let word = j % dims;
        let level = bits - 1 - (j / dims) as u32;
        x[word] |= (bit as u32) << level;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_packing_round_trip() {
        for idx in 0..4096u64 {
            let t = index_to_transpose(idx, 4, 3);
            assert_eq!(transpose_to_index(&t, 4), idx);
        }
    }

    #[test]
    fn round_trip_2d() {
        for bits in 1..=5u32 {
            let side = 1u32 << bits;
            for x in 0..side {
                for y in 0..side {
                    let idx = axes_to_index(&[x, y], bits);
                    assert_eq!(index_to_axes(idx, bits, 2), vec![x, y]);
                }
            }
        }
    }

    #[test]
    fn round_trip_3d() {
        let bits = 3u32;
        let side = 1u32 << bits;
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let idx = axes_to_index(&[x, y, z], bits);
                    assert_eq!(index_to_axes(idx, bits, 3), vec![x, y, z]);
                }
            }
        }
    }

    #[test]
    fn bijective_2d() {
        let bits = 4u32;
        let len = 1u64 << (2 * bits);
        let mut seen = vec![false; len as usize];
        for idx in 0..len {
            let c = index_to_axes(idx, bits, 2);
            let flat = (c[1] as usize) * (1 << bits) + c[0] as usize;
            assert!(!seen[flat]);
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn unit_steps_2d() {
        // Consecutive indices differ by exactly one unit in exactly one axis
        // — the Hilbert property, independent of orientation.
        let bits = 5u32;
        let len = 1u64 << (2 * bits);
        let mut prev = index_to_axes(0, bits, 2);
        for idx in 1..len {
            let cur = index_to_axes(idx, bits, 2);
            let d: u32 = prev
                .iter()
                .zip(&cur)
                .map(|(a, b)| a.abs_diff(*b))
                .sum();
            assert_eq!(d, 1, "index {idx}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn unit_steps_3d() {
        let bits = 3u32;
        let len = 1u64 << (3 * bits);
        let mut prev = index_to_axes(0, bits, 3);
        for idx in 1..len {
            let cur = index_to_axes(idx, bits, 3);
            let d: u32 = prev
                .iter()
                .zip(&cur)
                .map(|(a, b)| a.abs_diff(*b))
                .sum();
            assert_eq!(d, 1, "index {idx}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn unit_steps_4d() {
        let bits = 2u32;
        let len = 1u64 << (4 * bits);
        let mut prev = index_to_axes(0, bits, 4);
        for idx in 1..len {
            let cur = index_to_axes(idx, bits, 4);
            let d: u32 = prev
                .iter()
                .zip(&cur)
                .map(|(a, b)| a.abs_diff(*b))
                .sum();
            assert_eq!(d, 1);
            prev = cur;
        }
    }

    #[test]
    fn one_dimension_is_identity() {
        for idx in 0..32u64 {
            assert_eq!(index_to_axes(idx, 5, 1), vec![idx as u32]);
            assert_eq!(axes_to_index(&[idx as u32], 5), idx);
        }
    }
}
