//! Three-dimensional space-filling curves.
//!
//! The paper's experiments are all in 2-D; its future-work list (Section
//! VIII, item ii) calls for validating the trends in 3-D. This module
//! provides the 3-D counterparts of the paper's four curves so the ANNS and
//! ACD machinery can be exercised in three dimensions: Morton, Gray and
//! row-major by direct bit manipulation, and Hilbert through Skilling's
//! transform ([`crate::skilling`]).

use crate::gray::{gray_decode, gray_encode};
use crate::skilling;

/// A cell of a 3-D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point3 {
    /// First coordinate.
    pub x: u32,
    /// Second coordinate.
    pub y: u32,
    /// Third coordinate.
    pub z: u32,
}

impl Point3 {
    /// Construct a point from its coordinates.
    #[inline]
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Point3 { x, y, z }
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(self, other: Point3) -> u64 {
        self.x.abs_diff(other.x) as u64
            + self.y.abs_diff(other.y) as u64
            + self.z.abs_diff(other.z) as u64
    }

    /// Chebyshev (L∞) distance to `other`.
    #[inline]
    pub fn chebyshev(self, other: Point3) -> u64 {
        (self.x.abs_diff(other.x))
            .max(self.y.abs_diff(other.y))
            .max(self.z.abs_diff(other.z)) as u64
    }
}

/// Maximum supported order for 3-D curves (indices must fit in 63 bits).
pub const MAX_ORDER_3D: u32 = 20;

/// A discrete three-dimensional space-filling curve of order `k`: a
/// bijection between the `8^k` cells of a `2^k`-sided cube and `0 .. 8^k`.
pub trait Curve3d {
    /// The order `k` of the curve.
    fn order(&self) -> u32;

    /// Linear index of the cell `p`.
    fn index(&self, p: Point3) -> u64;

    /// Inverse of [`Curve3d::index`].
    fn point(&self, idx: u64) -> Point3;

    /// Side length of the cube, `2^k`.
    fn side(&self) -> u64 {
        1u64 << self.order()
    }

    /// Total number of cells, `8^k`.
    fn len(&self) -> u64 {
        1u64 << (3 * self.order())
    }

    /// Whether the curve covers no cells (never true for valid orders).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable name.
    fn name(&self) -> &'static str {
        "curve3d"
    }
}

fn check_order_3d(order: u32) {
    assert!(
        (1..=MAX_ORDER_3D).contains(&order),
        "3-D curve order must be in 1..={MAX_ORDER_3D}, got {order}"
    );
}

/// Spread the low 21 bits of `v` so bit `j` lands at bit `3j`.
#[inline]
pub fn spread3(v: u32) -> u64 {
    let mut v = (v as u64) & 0x1F_FFFF;
    v = (v | (v << 32)) & 0x001F_0000_0000_FFFF;
    v = (v | (v << 16)) & 0x001F_0000_FF00_00FF;
    v = (v | (v << 8)) & 0x100F_00F0_0F00_F00F;
    v = (v | (v << 4)) & 0x10C3_0C30_C30C_30C3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`spread3`].
#[inline]
pub fn gather3(v: u64) -> u32 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10C3_0C30_C30C_30C3;
    v = (v | (v >> 4)) & 0x100F_00F0_0F00_F00F;
    v = (v | (v >> 8)) & 0x001F_0000_FF00_00FF;
    v = (v | (v >> 16)) & 0x001F_0000_0000_FFFF;
    v = (v | (v >> 32)) & 0x0000_0000_001F_FFFF;
    v as u32
}

/// 3-D Morton code of `(x, y, z)`.
#[inline]
pub fn morton3_encode(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Inverse of [`morton3_encode`].
#[inline]
pub fn morton3_decode(code: u64) -> (u32, u32, u32) {
    (gather3(code), gather3(code >> 1), gather3(code >> 2))
}

macro_rules! curve3d_struct {
    ($(#[$doc:meta])* $name:ident, $display:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            order: u32,
        }

        impl $name {
            /// Create the curve over a `2^order`-sided cube.
            pub fn new(order: u32) -> Self {
                check_order_3d(order);
                $name { order }
            }
        }
    };
}

curve3d_struct!(
    /// 3-D Z-curve (Morton order).
    ZCurve3d,
    "Z-Curve 3D"
);

impl Curve3d for ZCurve3d {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point3) -> u64 {
        morton3_encode(p.x, p.y, p.z)
    }

    #[inline]
    fn point(&self, idx: u64) -> Point3 {
        let (x, y, z) = morton3_decode(idx);
        Point3::new(x, y, z)
    }

    fn name(&self) -> &'static str {
        "Z-Curve 3D"
    }
}

curve3d_struct!(
    /// 3-D Gray order: points ordered by the Gray rank of their Morton code.
    GrayCurve3d,
    "Gray Code 3D"
);

impl Curve3d for GrayCurve3d {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point3) -> u64 {
        gray_decode(morton3_encode(p.x, p.y, p.z))
    }

    #[inline]
    fn point(&self, idx: u64) -> Point3 {
        let (x, y, z) = morton3_decode(gray_encode(idx));
        Point3::new(x, y, z)
    }

    fn name(&self) -> &'static str {
        "Gray Code 3D"
    }
}

curve3d_struct!(
    /// 3-D row-major order: `z`-major, then `y`, then `x`.
    RowMajor3d,
    "Row Major 3D"
);

impl Curve3d for RowMajor3d {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point3) -> u64 {
        let k = self.order;
        ((p.z as u64) << (2 * k)) | ((p.y as u64) << k) | p.x as u64
    }

    #[inline]
    fn point(&self, idx: u64) -> Point3 {
        let k = self.order;
        let mask = (1u64 << k) - 1;
        Point3::new(
            (idx & mask) as u32,
            ((idx >> k) & mask) as u32,
            (idx >> (2 * k)) as u32,
        )
    }

    fn name(&self) -> &'static str {
        "Row Major 3D"
    }
}

curve3d_struct!(
    /// 3-D Hilbert curve via Skilling's transform.
    Hilbert3d,
    "Hilbert Curve 3D"
);

impl Curve3d for Hilbert3d {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point3) -> u64 {
        skilling::axes_to_index(&[p.x, p.y, p.z], self.order)
    }

    #[inline]
    fn point(&self, idx: u64) -> Point3 {
        let c = skilling::index_to_axes(idx, self.order, 3);
        Point3::new(c[0], c[1], c[2])
    }

    fn name(&self) -> &'static str {
        "Hilbert Curve 3D"
    }
}

/// Identifies one of the supported 3-D curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Curve3dKind {
    /// 3-D Hilbert curve.
    Hilbert,
    /// 3-D Z-curve.
    ZCurve,
    /// 3-D Gray order.
    Gray,
    /// 3-D row-major order.
    RowMajor,
}

impl Curve3dKind {
    /// The four 3-D curves, mirroring the paper's 2-D set.
    pub const ALL: [Curve3dKind; 4] = [
        Curve3dKind::Hilbert,
        Curve3dKind::ZCurve,
        Curve3dKind::Gray,
        Curve3dKind::RowMajor,
    ];

    /// Instantiate the curve at order `k` behind a trait object.
    pub fn curve(self, order: u32) -> Box<dyn Curve3d + Send + Sync> {
        match self {
            Curve3dKind::Hilbert => Box::new(Hilbert3d::new(order)),
            Curve3dKind::ZCurve => Box::new(ZCurve3d::new(order)),
            Curve3dKind::Gray => Box::new(GrayCurve3d::new(order)),
            Curve3dKind::RowMajor => Box::new(RowMajor3d::new(order)),
        }
    }

    /// Short display name.
    pub fn short_name(self) -> &'static str {
        match self {
            Curve3dKind::Hilbert => "Hilbert",
            Curve3dKind::ZCurve => "Z",
            Curve3dKind::Gray => "Gray",
            Curve3dKind::RowMajor => "RowMajor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread3_gather3_round_trip() {
        for v in [0u32, 1, 2, 0xFF, 0x1F_FFFF] {
            assert_eq!(gather3(spread3(v)), v);
        }
    }

    #[test]
    fn morton3_round_trip() {
        for (x, y, z) in [(0, 0, 0), (1, 2, 3), (100, 200, 300), (0x1F_FFFF, 0, 7)] {
            assert_eq!(morton3_decode(morton3_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn all_3d_curves_are_bijections() {
        let order = 2u32;
        for kind in Curve3dKind::ALL {
            let c = kind.curve(order);
            let mut seen = vec![false; c.len() as usize];
            for idx in 0..c.len() {
                let p = c.point(idx);
                assert_eq!(c.index(p), idx, "{}", c.name());
                let flat =
                    ((p.z as usize * 4) + p.y as usize) * 4 + p.x as usize;
                assert!(!seen[flat]);
                seen[flat] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn hilbert3d_unit_steps() {
        let h = Hilbert3d::new(3);
        let mut prev = h.point(0);
        for idx in 1..h.len() {
            let cur = h.point(idx);
            assert_eq!(prev.manhattan(cur), 1, "step at {idx}");
            prev = cur;
        }
    }

    #[test]
    fn gray3d_single_axis_steps() {
        let g = GrayCurve3d::new(2);
        for idx in 0..g.len() - 1 {
            let a = g.point(idx);
            let b = g.point(idx + 1);
            let axes_changed = [a.x != b.x, a.y != b.y, a.z != b.z]
                .iter()
                .filter(|&&c| c)
                .count();
            assert_eq!(axes_changed, 1);
        }
    }

    #[test]
    fn point3_distances() {
        let a = Point3::new(1, 2, 3);
        let b = Point3::new(4, 0, 3);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.chebyshev(b), 3);
    }
}
