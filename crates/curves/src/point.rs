//! Grid points and distances.
//!
//! All curves in this crate operate on cells of a `2^k × 2^k` grid addressed
//! by a pair of `u32` coordinates. [`Point2`] is deliberately a plain `Copy`
//! pair — experiments iterate over millions of these per trial, so it must
//! stay register-sized.

/// A cell of a 2-D grid. `x` grows to the right, `y` grows upward; the grid
/// origin `(0, 0)` is the lower-left cell, matching the figures in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point2 {
    /// Horizontal coordinate, `0 ..= 2^k - 1`.
    pub x: u32,
    /// Vertical coordinate, `0 ..= 2^k - 1`.
    pub y: u32,
}

impl Point2 {
    /// Construct a point from its coordinates.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Point2 { x, y }
    }

    /// Manhattan (L1) distance to `other`: `|Δx| + |Δy|`.
    ///
    /// This is the distance used by Xu & Tirthapura's nearest-neighbor
    /// stretch metric ("points that are separated by a Manhattan distance of
    /// 1 in k-space").
    #[inline]
    pub fn manhattan(self, other: Point2) -> u64 {
        self.x.abs_diff(other.x) as u64 + self.y.abs_diff(other.y) as u64
    }

    /// Chebyshev (L∞) distance to `other`: `max(|Δx|, |Δy|)`.
    ///
    /// Cells at Chebyshev distance 1 are the (up to) 8 cells sharing an edge
    /// or a corner — the near-field neighborhood of the FMM model in
    /// Section III of the paper.
    #[inline]
    pub fn chebyshev(self, other: Point2) -> u64 {
        (self.x.abs_diff(other.x)).max(self.y.abs_diff(other.y)) as u64
    }

    /// Squared Euclidean distance to `other` (exact, in integer arithmetic).
    #[inline]
    pub fn euclidean_sq(self, other: Point2) -> u64 {
        let dx = self.x.abs_diff(other.x) as u64;
        let dy = self.y.abs_diff(other.y) as u64;
        dx * dx + dy * dy
    }

    /// True if both coordinates are `< side`.
    #[inline]
    pub fn in_grid(self, side: u64) -> bool {
        (self.x as u64) < side && (self.y as u64) < side
    }

    /// The point translated by `(dx, dy)`, or `None` if the result would
    /// leave the `side × side` grid. Useful for neighbor enumeration.
    #[inline]
    pub fn offset(self, dx: i64, dy: i64, side: u64) -> Option<Point2> {
        let nx = self.x as i64 + dx;
        let ny = self.y as i64 + dy;
        if nx < 0 || ny < 0 || nx >= side as i64 || ny >= side as i64 {
            None
        } else {
            Some(Point2::new(nx as u32, ny as u32))
        }
    }
}

impl From<(u32, u32)> for Point2 {
    fn from((x, y): (u32, u32)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (u32, u32) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Metric used when enumerating spatial neighborhoods.
///
/// The paper uses the Chebyshev ball for the FMM near-field neighborhood
/// (cells sharing an edge/corner, at most 8 for radius 1) and the Manhattan
/// ball for the ANNS metric (4 nearest neighbors at radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Norm {
    /// L1 / taxicab distance.
    Manhattan,
    /// L∞ / king-move distance.
    Chebyshev,
}

impl Norm {
    /// Distance between `a` and `b` under this norm.
    #[inline]
    pub fn distance(self, a: Point2, b: Point2) -> u64 {
        match self {
            Norm::Manhattan => a.manhattan(b),
            Norm::Chebyshev => a.chebyshev(b),
        }
    }

    /// All grid cells within distance `radius` of `center` (excluding
    /// `center` itself) that lie inside the `side × side` grid.
    pub fn ball(self, center: Point2, radius: u32, side: u64) -> Vec<Point2> {
        let r = radius as i64;
        let mut out = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let within = match self {
                    Norm::Manhattan => dx.abs() + dy.abs() <= r,
                    Norm::Chebyshev => dx.abs().max(dy.abs()) <= r,
                };
                if !within {
                    continue;
                }
                if let Some(p) = center.offset(dx, dy, side) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Number of cells in a full (unclipped) ball of the given radius,
    /// excluding the center.
    pub fn ball_size(self, radius: u32) -> u64 {
        let r = radius as u64;
        match self {
            Norm::Manhattan => 2 * r * (r + 1),
            Norm::Chebyshev => (2 * r + 1) * (2 * r + 1) - 1,
        }
    }

    /// Stable lowercase identifier, used in serialized experiment specs.
    pub fn name(self) -> &'static str {
        match self {
            Norm::Manhattan => "manhattan",
            Norm::Chebyshev => "chebyshev",
        }
    }

    /// Inverse of [`Norm::name`]; accepts a few common aliases.
    pub fn parse(s: &str) -> Option<Norm> {
        match s.to_ascii_lowercase().as_str() {
            "manhattan" | "l1" | "taxicab" => Some(Norm::Manhattan),
            "chebyshev" | "linf" | "king" => Some(Norm::Chebyshev),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_basics() {
        let a = Point2::new(1, 2);
        let b = Point2::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn chebyshev_distance_basics() {
        let a = Point2::new(1, 2);
        let b = Point2::new(4, 0);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.chebyshev(a), 0);
    }

    #[test]
    fn euclidean_sq_matches_hand_computation() {
        let a = Point2::new(0, 0);
        let b = Point2::new(3, 4);
        assert_eq!(a.euclidean_sq(b), 25);
    }

    #[test]
    fn offset_rejects_out_of_grid() {
        let p = Point2::new(0, 3);
        assert_eq!(p.offset(-1, 0, 4), None);
        assert_eq!(p.offset(0, 1, 4), None);
        assert_eq!(p.offset(1, -1, 4), Some(Point2::new(1, 2)));
    }

    #[test]
    fn manhattan_ball_radius_one_is_four_neighbors() {
        let ball = Norm::Manhattan.ball(Point2::new(2, 2), 1, 8);
        assert_eq!(ball.len(), 4);
        assert_eq!(Norm::Manhattan.ball_size(1), 4);
    }

    #[test]
    fn chebyshev_ball_radius_one_is_eight_neighbors() {
        // Matches the paper's Section III bound: at most 8 cells share an
        // edge/corner with a given cell.
        let ball = Norm::Chebyshev.ball(Point2::new(2, 2), 1, 8);
        assert_eq!(ball.len(), 8);
        assert_eq!(Norm::Chebyshev.ball_size(1), 8);
    }

    #[test]
    fn balls_clip_at_grid_boundary() {
        let ball = Norm::Chebyshev.ball(Point2::new(0, 0), 1, 8);
        assert_eq!(ball.len(), 3);
        let ball = Norm::Manhattan.ball(Point2::new(0, 0), 2, 8);
        // (1,0),(2,0),(0,1),(0,2),(1,1)
        assert_eq!(ball.len(), 5);
    }

    #[test]
    fn ball_size_formulas_match_enumeration() {
        let center = Point2::new(16, 16);
        for r in 1..6 {
            assert_eq!(
                Norm::Manhattan.ball(center, r, 64).len() as u64,
                Norm::Manhattan.ball_size(r)
            );
            assert_eq!(
                Norm::Chebyshev.ball(center, r, 64).len() as u64,
                Norm::Chebyshev.ball_size(r)
            );
        }
    }

    #[test]
    fn conversions() {
        let p: Point2 = (3u32, 4u32).into();
        let t: (u32, u32) = p.into();
        assert_eq!(t, (3, 4));
        assert_eq!(format!("{p}"), "(3, 4)");
    }
}
