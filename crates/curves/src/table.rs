//! Precomputed curve permutation tables.
//!
//! Metric sweeps (ANNS in particular) evaluate `index(p)` for *every* cell
//! of a grid, often repeatedly. [`CurveTable`] materializes the full
//! point→index permutation once — `O(4^k)` memory — turning each lookup into
//! a single indexed load. The `curves` bench compares table lookups against
//! recomputing the transform per query.

use crate::{Curve2d, CurveKind, Point2};

/// A fully materialized curve of order `k`: both directions of the bijection
/// stored as flat arrays indexed in row-major order.
#[derive(Debug, Clone)]
pub struct CurveTable {
    kind: CurveKind,
    order: u32,
    /// `index_of[y * side + x]` = linear curve index of cell `(x, y)`.
    index_of: Vec<u64>,
    /// `point_of[i]` = cell at curve position `i`, packed as `y * side + x`.
    point_of: Vec<u32>,
}

impl CurveTable {
    /// Materialize the table for `kind` at the given order.
    ///
    /// Memory use is `12 * 4^order` bytes; orders above 14 (a 16384² grid,
    /// 3 GiB) are rejected.
    pub fn new(kind: CurveKind, order: u32) -> Self {
        assert!(
            (1..=14).contains(&order),
            "CurveTable limited to order <= 14 (got {order}); use the direct \
             transforms for larger grids"
        );
        let side = 1usize << order;
        let len = side * side;
        let mut index_of = vec![0u64; len];
        let mut point_of = vec![0u32; len];
        for y in 0..side as u32 {
            for x in 0..side as u32 {
                let p = Point2::new(x, y);
                let idx = kind.index_of(order, p);
                let flat = y as usize * side + x as usize;
                index_of[flat] = idx;
                point_of[idx as usize] = (y << order) | x;
            }
        }
        CurveTable {
            kind,
            order,
            index_of,
            point_of,
        }
    }

    /// The curve this table materializes.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }

    /// The full index row at height `y`: `index_row(y)[x]` is the linear
    /// curve index of cell `(x, y)`. Full-grid sweeps (ANNS) walk clipped
    /// contiguous segments of these rows instead of calling
    /// [`Curve2d::index`] per cell.
    #[inline]
    pub fn index_row(&self, y: u32) -> &[u64] {
        let side = 1usize << self.order;
        let start = (y as usize) << self.order;
        &self.index_of[start..start + side]
    }
}

impl Curve2d for CurveTable {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point2) -> u64 {
        self.index_of[((p.y as usize) << self.order) | p.x as usize]
    }

    #[inline]
    fn point(&self, idx: u64) -> Point2 {
        let packed = self.point_of[idx as usize];
        Point2::new(packed & ((1 << self.order) - 1), packed >> self.order)
    }

    fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_direct_transforms() {
        for kind in CurveKind::ALL {
            let table = CurveTable::new(kind, 4);
            for idx in 0..table.len() {
                let p = table.point(idx);
                assert_eq!(p, kind.point_of(4, idx), "{kind}");
                assert_eq!(table.index(p), idx, "{kind}");
            }
        }
    }

    #[test]
    fn table_is_a_permutation() {
        let table = CurveTable::new(CurveKind::Hilbert, 5);
        let mut seen = vec![false; table.len() as usize];
        for y in 0..table.side() as u32 {
            for x in 0..table.side() as u32 {
                let idx = table.index(Point2::new(x, y)) as usize;
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn index_rows_match_per_cell_lookups() {
        let table = CurveTable::new(CurveKind::Gray, 4);
        for y in 0..table.side() as u32 {
            let row = table.index_row(y);
            assert_eq!(row.len(), table.side() as usize);
            for x in 0..table.side() as u32 {
                assert_eq!(row[x as usize], table.index(Point2::new(x, y)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "CurveTable limited")]
    fn oversized_table_rejected() {
        let _ = CurveTable::new(CurveKind::Hilbert, 15);
    }
}
