//! The Gray order.
//!
//! The Gray order (Section II-A.2 of the paper) takes the Z-curve (Morton)
//! code of each point and orders the points by the position of that code in
//! the reflected binary Gray code sequence, rather than by its numeric
//! value. Concretely, the cell with Morton code `z` receives linear index
//! `gray_decode(z)` — the unique `i` with `gray_encode(i) = z`.
//!
//! Consecutive cells of the Gray order therefore have Morton codes that
//! differ in exactly one bit. As a recursive construction it places four
//! copies of `G_k` in a 2 × 2 grid where the lower two copies are unrotated
//! and the upper two copies are rotated 180°.

use crate::{check_order, morton, Curve2d, Point2};

/// Reflected binary Gray code of `i`: `i ^ (i >> 1)`.
#[inline]
pub fn gray_encode(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Inverse of [`gray_encode`]: the rank of `g` in the Gray code sequence.
///
/// Computed by the logarithmic prefix-XOR fold.
#[inline]
pub fn gray_decode(g: u64) -> u64 {
    let mut i = g;
    i ^= i >> 1;
    i ^= i >> 2;
    i ^= i >> 4;
    i ^= i >> 8;
    i ^= i >> 16;
    i ^= i >> 32;
    i
}

/// Gray-order index of `p`: the Gray rank of the point's Morton code.
#[inline]
pub fn gray_index(order: u32, p: Point2) -> u64 {
    gray_decode(morton::morton_index(order, p))
}

/// The grid cell at Gray-order position `idx`.
#[inline]
pub fn gray_point(order: u32, idx: u64) -> Point2 {
    morton::morton_point(order, gray_encode(idx))
}

/// The Gray order of a given order (grid exponent).
///
/// ```
/// use sfc_curves::{Curve2d, GrayCurve, Point2};
/// let g = GrayCurve::new(1);
/// // Visit order: LL, LR, UR, UL — the reflected "U".
/// assert_eq!(g.point(0), Point2::new(0, 0));
/// assert_eq!(g.point(1), Point2::new(1, 0));
/// assert_eq!(g.point(2), Point2::new(1, 1));
/// assert_eq!(g.point(3), Point2::new(0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrayCurve {
    order: u32,
}

impl GrayCurve {
    /// Create a Gray-order curve over a `2^order × 2^order` grid.
    pub fn new(order: u32) -> Self {
        check_order(order);
        GrayCurve { order }
    }
}

impl Curve2d for GrayCurve {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point2) -> u64 {
        debug_assert!(p.in_grid(self.side()));
        gray_index(self.order, p)
    }

    #[inline]
    fn point(&self, idx: u64) -> Point2 {
        debug_assert!(idx < self.len());
        gray_point(self.order, idx)
    }

    fn name(&self) -> &'static str {
        "Gray Code"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_encode_first_values() {
        let expected = [0u64, 1, 3, 2, 6, 7, 5, 4];
        for (i, &g) in expected.iter().enumerate() {
            assert_eq!(gray_encode(i as u64), g);
        }
    }

    #[test]
    fn gray_encode_decode_round_trip() {
        for i in 0..4096u64 {
            assert_eq!(gray_decode(gray_encode(i)), i);
        }
        for i in [u64::MAX, u64::MAX / 3, 1 << 63] {
            assert_eq!(gray_decode(gray_encode(i)), i);
        }
    }

    #[test]
    fn consecutive_gray_codes_differ_in_one_bit() {
        for i in 0..4096u64 {
            let diff = gray_encode(i) ^ gray_encode(i + 1);
            assert_eq!(diff.count_ones(), 1, "codes {i} and {} differ in more than one bit", i + 1);
        }
    }

    #[test]
    fn consecutive_cells_have_single_bit_morton_difference() {
        // The defining property of the Gray order as a curve: successive
        // cells' Z-codes are Gray-adjacent.
        let g = GrayCurve::new(4);
        for idx in 0..g.len() - 1 {
            let za = morton::morton_index(4, g.point(idx));
            let zb = morton::morton_index(4, g.point(idx + 1));
            assert_eq!((za ^ zb).count_ones(), 1);
        }
    }

    #[test]
    fn consecutive_cells_move_along_one_axis() {
        // A single flipped Morton bit changes exactly one coordinate (by a
        // power of two), so Gray steps are always axis-aligned.
        let g = GrayCurve::new(5);
        for idx in 0..g.len() - 1 {
            let a = g.point(idx);
            let b = g.point(idx + 1);
            assert!(a.x == b.x || a.y == b.y);
            let (da, db) = (a.x.abs_diff(b.x), a.y.abs_diff(b.y));
            let step = da.max(db);
            assert!(step.is_power_of_two());
        }
    }

    #[test]
    fn round_trip_exhaustive_order_4() {
        let g = GrayCurve::new(4);
        for idx in 0..g.len() {
            assert_eq!(g.index(g.point(idx)), idx);
        }
    }

    #[test]
    fn recursive_structure_lower_quadrants_unrotated() {
        // First quarter of the order-2 curve is the order-1 curve embedded
        // in the lower-left quadrant (unrotated).
        let g1 = GrayCurve::new(1);
        let g2 = GrayCurve::new(2);
        for idx in 0..4 {
            let p1 = g1.point(idx);
            let p2 = g2.point(idx);
            assert_eq!((p2.x, p2.y), (p1.x, p1.y));
        }
    }

    #[test]
    fn recursive_structure_alternate_quadrants_reflected() {
        // With this crate's Morton bit convention the order-2 Gray curve
        // visits the quadrants in the order LL, LR, UR, UL; the 1st and 3rd
        // visited quadrants embed G_1 untouched while the 2nd and 4th embed
        // its mirror image (the same recursive structure as the paper's
        // description, up to a grid symmetry fixed by the bit convention).
        let g1 = GrayCurve::new(1);
        let g2 = GrayCurve::new(2);
        for idx in 0..4u64 {
            let p1 = g1.point(idx);
            // 2nd visited quadrant: lower-right, reflected vertically.
            let p2 = g2.point(4 + idx);
            assert_eq!((p2.x, p2.y), (p1.x + 2, 1 - p1.y));
            // 3rd visited quadrant: upper-right, untouched.
            let p3 = g2.point(8 + idx);
            assert_eq!((p3.x, p3.y), (p1.x + 2, p1.y + 2));
            // 4th visited quadrant: upper-left, reflected vertically.
            let p4 = g2.point(12 + idx);
            assert_eq!((p4.x, p4.y), (p1.x, 2 + (1 - p1.y)));
        }
    }
}
