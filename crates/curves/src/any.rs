//! A concrete, `Copy`-cheap sum type over the supported 2-D curves.
//!
//! [`CurveKind::curve`] hands back a `Box<dyn Curve2d + Send + Sync>`, which
//! is convenient for heterogeneous collections but costs an allocation and a
//! vtable dispatch per call. Hot loops and serializable experiment specs want
//! a register-sized handle instead: [`AnyCurve2d`] is an enum of the seven
//! concrete curve structs (each just a `u32` order), so it is `Copy`, needs
//! no allocation, and dispatches with a jump table the optimizer can inline.
//!
//! The boxed trait path remains available and now delegates to this type, so
//! both APIs are guaranteed to agree.
//!
//! ```
//! use sfc_curves::{AnyCurve2d, Curve2d, CurveKind, Point2};
//!
//! let any = CurveKind::Hilbert.any(4); // Copy — no allocation
//! let boxed = CurveKind::Hilbert.curve(4); // Box<dyn Curve2d + Send + Sync>
//! let p = Point2::new(3, 7);
//! assert_eq!(any.index(p), boxed.index(p));
//! assert_eq!(any.kind(), CurveKind::Hilbert);
//! ```

use crate::{
    Boustrophedon, ColumnMajor, Curve2d, CurveKind, GrayCurve, HilbertCurve, MooreCurve, Point2,
    RowMajor, ZCurve,
};

/// One of the seven supported 2-D curves, held by value.
///
/// Construct via [`AnyCurve2d::new`] or [`CurveKind::any`]. Implements
/// [`Curve2d`] by delegating to the wrapped concrete curve, so it can be used
/// anywhere a curve is expected — without the allocation or indirection of
/// `Box<dyn Curve2d>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyCurve2d {
    /// The Hilbert curve.
    Hilbert(HilbertCurve),
    /// The Z-curve / Morton order.
    ZCurve(ZCurve),
    /// The Gray order.
    Gray(GrayCurve),
    /// Row-major order.
    RowMajor(RowMajor),
    /// Column-major order.
    ColumnMajor(ColumnMajor),
    /// Boustrophedon ("snake scan") order.
    Boustrophedon(Boustrophedon),
    /// The Moore curve.
    Moore(MooreCurve),
}

impl AnyCurve2d {
    /// Instantiate `kind` at order `k` by value.
    pub fn new(kind: CurveKind, order: u32) -> AnyCurve2d {
        match kind {
            CurveKind::Hilbert => AnyCurve2d::Hilbert(HilbertCurve::new(order)),
            CurveKind::ZCurve => AnyCurve2d::ZCurve(ZCurve::new(order)),
            CurveKind::Gray => AnyCurve2d::Gray(GrayCurve::new(order)),
            CurveKind::RowMajor => AnyCurve2d::RowMajor(RowMajor::new(order)),
            CurveKind::ColumnMajor => AnyCurve2d::ColumnMajor(ColumnMajor::new(order)),
            CurveKind::Boustrophedon => AnyCurve2d::Boustrophedon(Boustrophedon::new(order)),
            CurveKind::Moore => AnyCurve2d::Moore(MooreCurve::new(order)),
        }
    }

    /// The [`CurveKind`] tag of the wrapped curve.
    pub fn kind(&self) -> CurveKind {
        match self {
            AnyCurve2d::Hilbert(_) => CurveKind::Hilbert,
            AnyCurve2d::ZCurve(_) => CurveKind::ZCurve,
            AnyCurve2d::Gray(_) => CurveKind::Gray,
            AnyCurve2d::RowMajor(_) => CurveKind::RowMajor,
            AnyCurve2d::ColumnMajor(_) => CurveKind::ColumnMajor,
            AnyCurve2d::Boustrophedon(_) => CurveKind::Boustrophedon,
            AnyCurve2d::Moore(_) => CurveKind::Moore,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $c:ident => $body:expr) => {
        match $self {
            AnyCurve2d::Hilbert($c) => $body,
            AnyCurve2d::ZCurve($c) => $body,
            AnyCurve2d::Gray($c) => $body,
            AnyCurve2d::RowMajor($c) => $body,
            AnyCurve2d::ColumnMajor($c) => $body,
            AnyCurve2d::Boustrophedon($c) => $body,
            AnyCurve2d::Moore($c) => $body,
        }
    };
}

impl Curve2d for AnyCurve2d {
    fn order(&self) -> u32 {
        delegate!(self, c => c.order())
    }

    #[inline]
    fn index(&self, p: Point2) -> u64 {
        delegate!(self, c => c.index(p))
    }

    #[inline]
    fn point(&self, idx: u64) -> Point2 {
        delegate!(self, c => c.point(idx))
    }

    fn name(&self) -> &'static str {
        delegate!(self, c => c.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_curve_agrees_with_boxed_and_direct() {
        for kind in CurveKind::ALL {
            let any = kind.any(3);
            let boxed = kind.curve(3);
            assert_eq!(any.kind(), kind);
            assert_eq!(any.order(), 3);
            assert_eq!(any.name(), boxed.name());
            assert_eq!(any.name(), kind.name());
            for idx in 0..any.len() {
                let p = any.point(idx);
                assert_eq!(p, boxed.point(idx));
                assert_eq!(any.index(p), idx);
                assert_eq!(kind.index_of(3, p), idx);
            }
        }
    }

    #[test]
    fn any_curve_is_copy_and_register_sized() {
        fn assert_copy<T: Copy + Send + Sync>() {}
        assert_copy::<AnyCurve2d>();
        // tag + u32 order; must stay cheap enough to pass by value in hot
        // loops.
        assert!(std::mem::size_of::<AnyCurve2d>() <= 8);
    }

    #[test]
    #[should_panic(expected = "curve order must be")]
    fn any_curve_rejects_bad_order() {
        let _ = AnyCurve2d::new(CurveKind::Hilbert, 0);
    }
}
