//! Row-major, column-major, and boustrophedon ("snake scan") orders.
//!
//! The row-major order is the simplest SFC in the paper's comparison: it
//! numbers the grid one row at a time. The column-major order is its
//! transpose (Section II-A.3 of the paper describes the column-wise variant;
//! both are provided, and every metric in this workspace treats them
//! symmetrically). The boustrophedon order reverses the direction of every
//! other row, making it the discrete analog of the continuous "snake scan"
//! that Xu & Tirthapura prove is asymptotically optimal for clustering.

use crate::{check_order, Curve2d, Point2};

/// Row-major index: `y * 2^order + x`.
#[inline]
pub fn row_major_index(order: u32, p: Point2) -> u64 {
    ((p.y as u64) << order) | p.x as u64
}

/// Inverse of [`row_major_index`].
#[inline]
pub fn row_major_point(order: u32, idx: u64) -> Point2 {
    let side_mask = (1u64 << order) - 1;
    Point2::new((idx & side_mask) as u32, (idx >> order) as u32)
}

/// Column-major index: `x * 2^order + y`.
#[inline]
pub fn column_major_index(order: u32, p: Point2) -> u64 {
    ((p.x as u64) << order) | p.y as u64
}

/// Inverse of [`column_major_index`].
#[inline]
pub fn column_major_point(order: u32, idx: u64) -> Point2 {
    let side_mask = (1u64 << order) - 1;
    Point2::new((idx >> order) as u32, (idx & side_mask) as u32)
}

/// Boustrophedon index: rows are numbered bottom-to-top, odd rows run
/// right-to-left.
#[inline]
pub fn boustrophedon_index(order: u32, p: Point2) -> u64 {
    let side = 1u64 << order;
    let x = if p.y & 1 == 1 {
        side - 1 - p.x as u64
    } else {
        p.x as u64
    };
    ((p.y as u64) << order) | x
}

/// Inverse of [`boustrophedon_index`].
#[inline]
pub fn boustrophedon_point(order: u32, idx: u64) -> Point2 {
    let side = 1u64 << order;
    let y = (idx >> order) as u32;
    let x_raw = idx & (side - 1);
    let x = if y & 1 == 1 { side - 1 - x_raw } else { x_raw };
    Point2::new(x as u32, y)
}

macro_rules! scan_curve {
    ($(#[$doc:meta])* $name:ident, $index_fn:path, $point_fn:path, $display:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            order: u32,
        }

        impl $name {
            /// Create the curve over a `2^order × 2^order` grid.
            pub fn new(order: u32) -> Self {
                check_order(order);
                $name { order }
            }
        }

        impl Curve2d for $name {
            fn order(&self) -> u32 {
                self.order
            }

            #[inline]
            fn index(&self, p: Point2) -> u64 {
                debug_assert!(p.in_grid(self.side()));
                $index_fn(self.order, p)
            }

            #[inline]
            fn point(&self, idx: u64) -> Point2 {
                debug_assert!(idx < self.len());
                $point_fn(self.order, idx)
            }

            fn name(&self) -> &'static str {
                $display
            }
        }
    };
}

scan_curve!(
    /// Row-major scan order.
    ///
    /// ```
    /// use sfc_curves::{Curve2d, RowMajor, Point2};
    /// let r = RowMajor::new(2);
    /// assert_eq!(r.index(Point2::new(3, 1)), 7);
    /// assert_eq!(r.point(7), Point2::new(3, 1));
    /// ```
    RowMajor,
    row_major_index,
    row_major_point,
    "Row Major"
);

scan_curve!(
    /// Column-major scan order (transpose of [`RowMajor`]).
    ColumnMajor,
    column_major_index,
    column_major_point,
    "Column Major"
);

scan_curve!(
    /// Boustrophedon ("snake scan") order: row-major with every other row
    /// reversed, so consecutive cells are always edge-adjacent.
    Boustrophedon,
    boustrophedon_index,
    boustrophedon_point,
    "Snake Scan"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let r = RowMajor::new(2);
        assert_eq!(r.index(Point2::new(0, 0)), 0);
        assert_eq!(r.index(Point2::new(3, 0)), 3);
        assert_eq!(r.index(Point2::new(0, 1)), 4);
        assert_eq!(r.index(Point2::new(3, 3)), 15);
    }

    #[test]
    fn column_major_is_transpose_of_row_major() {
        let r = RowMajor::new(3);
        let c = ColumnMajor::new(3);
        for idx in 0..r.len() {
            let p = r.point(idx);
            let t = Point2::new(p.y, p.x);
            assert_eq!(c.index(t), idx);
        }
    }

    #[test]
    fn boustrophedon_unit_steps() {
        let b = Boustrophedon::new(4);
        for idx in 0..b.len() - 1 {
            assert_eq!(b.point(idx).manhattan(b.point(idx + 1)), 1);
        }
    }

    #[test]
    fn boustrophedon_even_rows_match_row_major() {
        let b = Boustrophedon::new(3);
        let r = RowMajor::new(3);
        for y in (0..8u32).step_by(2) {
            for x in 0..8u32 {
                let p = Point2::new(x, y);
                assert_eq!(b.index(p), r.index(p));
            }
        }
    }

    #[test]
    fn boustrophedon_odd_rows_reverse() {
        let b = Boustrophedon::new(2);
        // Row y=1 runs right-to-left: index 4 is (3,1), index 7 is (0,1).
        assert_eq!(b.point(4), Point2::new(3, 1));
        assert_eq!(b.point(7), Point2::new(0, 1));
    }

    #[test]
    fn round_trips() {
        for order in 1..=5 {
            let curves: Vec<Box<dyn Curve2d>> = vec![
                Box::new(RowMajor::new(order)),
                Box::new(ColumnMajor::new(order)),
                Box::new(Boustrophedon::new(order)),
            ];
            for c in curves {
                for idx in 0..c.len() {
                    assert_eq!(c.index(c.point(idx)), idx);
                }
            }
        }
    }

    #[test]
    fn row_major_vertical_neighbor_stretch_is_side() {
        // The property that drives row-major's poor ANNS contribution from
        // vertical neighbors: they are exactly `side` apart in the ordering.
        let r = RowMajor::new(6);
        let a = r.index(Point2::new(17, 20));
        let b = r.index(Point2::new(17, 21));
        assert_eq!(b - a, r.side());
    }
}
