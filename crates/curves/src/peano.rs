//! The Peano curve — the original space-filling curve (Peano 1890, the
//! paper's reference \[18\]).
//!
//! Unlike the other curves in this crate, the Peano curve lives on
//! `3^k × 3^k` grids: each level splits a square into a 3 × 3 block
//! traversed in a serpentine order, with sub-squares reflected so the curve
//! stays continuous. It therefore cannot implement [`crate::Curve2d`]
//! (power-of-two grids); it gets its own small interface plus a dedicated
//! stretch computation so the ANNS comparison can include it.
//!
//! Construction (standard "switchback" Peano): write `x` and `y` in base 3,
//! most significant digit first, interleaving into index digits. A
//! coordinate digit is *inverted* (`d → 2 − d`) when the sum of certain
//! preceding digits is odd — concretely, digit `x_i` is inverted iff the sum
//! of `y_0..y_i` (coarser `y` digits) is odd, and `y_i` iff the sum of
//! `x_0..x_{i-1}` (strictly coarser `x` digits) is odd. This is exactly the
//! ternary analog of the boustrophedon reflection rule, applied recursively.

use crate::Point2;

/// The Peano curve over a `3^order × 3^order` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeanoCurve {
    order: u32,
}

impl PeanoCurve {
    /// Create a Peano curve of the given order (`1 ..= 19`; `3^19 < 2^31`).
    pub fn new(order: u32) -> Self {
        assert!(
            (1..=19).contains(&order),
            "Peano order must be in 1..=19, got {order}"
        );
        PeanoCurve { order }
    }

    /// The order `k`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Side length `3^k`.
    pub fn side(&self) -> u64 {
        3u64.pow(self.order)
    }

    /// Total number of cells `9^k`.
    pub fn len(&self) -> u64 {
        9u64.pow(self.order)
    }

    /// True if the curve covers no cells (never for valid orders).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `p`.
    pub fn index(&self, p: Point2) -> u64 {
        let k = self.order as usize;
        let side = self.side();
        assert!((p.x as u64) < side && (p.y as u64) < side);
        // Base-3 digits, most significant first.
        let mut xd = vec![0u8; k];
        let mut yd = vec![0u8; k];
        let (mut x, mut y) = (p.x as u64, p.y as u64);
        for i in (0..k).rev() {
            xd[i] = (x % 3) as u8;
            x /= 3;
            yd[i] = (y % 3) as u8;
            y /= 3;
        }
        // Apply inversions level by level and interleave.
        let mut idx = 0u64;
        let mut x_parity = 0u8; // parity of x digits consumed so far
        let mut y_parity = 0u8; // parity of y digits consumed so far
        for i in 0..k {
            // The x digit at level i is traversed in reverse when the y
            // digits consumed so far (coarser or equal in the traversal
            // order x_0 y_0 x_1 y_1 ...) have odd sum — and vice versa.
            let dx = if y_parity % 2 == 1 { 2 - xd[i] } else { xd[i] };
            x_parity = (x_parity + xd[i]) % 2;
            let dy = if x_parity % 2 == 1 { 2 - yd[i] } else { yd[i] };
            y_parity = (y_parity + yd[i]) % 2;
            idx = idx * 9 + (dx as u64) * 3 + dy as u64;
        }
        idx
    }

    /// The grid cell at linear position `idx`.
    pub fn point(&self, idx: u64) -> Point2 {
        let k = self.order as usize;
        assert!(idx < self.len());
        // Extract interleaved digits, most significant first.
        let mut digits = vec![(0u8, 0u8); k];
        let mut rem = idx;
        for i in (0..k).rev() {
            let pair = rem % 9;
            rem /= 9;
            digits[i] = ((pair / 3) as u8, (pair % 3) as u8);
        }
        // Undo the inversions in the same order they were applied.
        let mut x = 0u64;
        let mut y = 0u64;
        let mut x_parity = 0u8;
        let mut y_parity = 0u8;
        for &(dx, dy) in digits.iter().take(k) {
            let xd = if y_parity % 2 == 1 { 2 - dx } else { dx };
            x_parity = (x_parity + xd) % 2;
            let yd = if x_parity % 2 == 1 { 2 - dy } else { dy };
            y_parity = (y_parity + yd) % 2;
            x = x * 3 + xd as u64;
            y = y * 3 + yd as u64;
        }
        Point2::new(x as u32, y as u32)
    }

    /// Average nearest-neighbor stretch over the full grid (Manhattan-1
    /// pairs), the metric of the paper's Section V, computed directly.
    pub fn anns(&self) -> f64 {
        let side = self.side() as u32;
        let mut total = 0u128;
        let mut pairs = 0u64;
        for y in 0..side {
            for x in 0..side {
                let here = self.index(Point2::new(x, y));
                if x + 1 < side {
                    total += here.abs_diff(self.index(Point2::new(x + 1, y))) as u128;
                    pairs += 1;
                }
                if y + 1 < side {
                    total += here.abs_diff(self.index(Point2::new(x, y + 1))) as u128;
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_is_the_serpentine() {
        // The base 3x3 motif: up the first column, down the second, up the
        // third (with this module's digit convention).
        let p = PeanoCurve::new(1);
        let seq: Vec<(u32, u32)> = (0..9).map(|i| p.point(i).into()).collect();
        assert_eq!(
            seq,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 1),
                (1, 0),
                (2, 0),
                (2, 1),
                (2, 2)
            ]
        );
    }

    #[test]
    fn round_trip_exhaustive() {
        for order in 1..=4 {
            let p = PeanoCurve::new(order);
            for idx in 0..p.len() {
                assert_eq!(p.index(p.point(idx)), idx, "order {order} idx {idx}");
            }
        }
    }

    #[test]
    fn bijective() {
        let p = PeanoCurve::new(3);
        let mut seen = vec![false; p.len() as usize];
        for idx in 0..p.len() {
            let pt = p.point(idx);
            let flat = (pt.y as u64 * p.side() + pt.x as u64) as usize;
            assert!(!seen[flat]);
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn unit_steps_everywhere() {
        // The Peano curve is continuous: consecutive cells are always
        // edge-adjacent, like the Hilbert curve.
        for order in 1..=4 {
            let p = PeanoCurve::new(order);
            for idx in 0..p.len() - 1 {
                assert_eq!(
                    p.point(idx).manhattan(p.point(idx + 1)),
                    1,
                    "order {order} step {idx}"
                );
            }
        }
    }

    #[test]
    fn anns_grows_linearly_with_side() {
        // Continuous curves have ANNS Θ(side); the ratio to the side should
        // stabilize.
        let a2 = PeanoCurve::new(2).anns() / 9.0;
        let a3 = PeanoCurve::new(3).anns() / 27.0;
        let a4 = PeanoCurve::new(4).anns() / 81.0;
        assert!((a3 - a4).abs() < 0.1 * a4, "{a2} {a3} {a4}");
    }

    #[test]
    fn anns_comparable_to_hilbert_per_cell_count() {
        // Scale-free comparison: stretch divided by the cell count should be
        // the same order of magnitude as the Hilbert curve's at a similar
        // grid size (both are continuous recursive curves).
        let peano = PeanoCurve::new(3); // 27x27 = 729 cells
        let hilbert_res = crate::CurveKind::Hilbert; // use 32x32 = 1024 cells
        let peano_ratio = peano.anns() / peano.len() as f64;
        // Hilbert ANNS at order 5 computed directly.
        let mut total = 0u64;
        let mut pairs = 0u64;
        for y in 0..32u32 {
            for x in 0..32u32 {
                let here = hilbert_res.index_of(5, Point2::new(x, y));
                if x + 1 < 32 {
                    total += here.abs_diff(hilbert_res.index_of(5, Point2::new(x + 1, y)));
                    pairs += 1;
                }
                if y + 1 < 32 {
                    total += here.abs_diff(hilbert_res.index_of(5, Point2::new(x, y + 1)));
                    pairs += 1;
                }
            }
        }
        let hilbert_ratio = total as f64 / pairs as f64 / 1024.0;
        assert!(
            peano_ratio < 3.0 * hilbert_ratio && hilbert_ratio < 3.0 * peano_ratio,
            "peano {peano_ratio} vs hilbert {hilbert_ratio}"
        );
    }
}
