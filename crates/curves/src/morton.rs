//! The Z-curve (Morton order).
//!
//! The Z-curve is obtained by interleaving the binary representations of the
//! two coordinates: bit `j` of `x` lands at bit `2j` of the index and bit
//! `j` of `y` at bit `2j + 1`. Equivalently it is the recursive curve that
//! visits the four quadrants in the fixed order lower-left, lower-right,
//! upper-left, upper-right, without any rotation (Section II-A.2 of the
//! paper).
//!
//! The interleave is implemented with the classic parallel-prefix
//! ("magic number") bit spreading, which runs in a handful of cycles and is
//! branch-free — exactly the "compute the order of each point directly with
//! bit operations" approach the paper notes is more efficient than recursion.

use crate::{check_order, Curve2d, Point2};

/// Spread the low 32 bits of `v` so that bit `j` moves to bit `2j`.
#[inline]
pub fn spread_bits(v: u32) -> u64 {
    let mut v = v as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread_bits`]: gather the even-position bits of `v` into the
/// low 32 bits of the result.
#[inline]
pub fn gather_bits(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Morton (Z-curve) index of `p`. The `order` parameter is accepted for
/// interface symmetry with the other curves; the Morton code of a point does
/// not depend on the grid order.
#[inline]
pub fn morton_index(_order: u32, p: Point2) -> u64 {
    spread_bits(p.x) | (spread_bits(p.y) << 1)
}

/// The grid cell at Morton position `idx`.
#[inline]
pub fn morton_point(_order: u32, idx: u64) -> Point2 {
    Point2::new(gather_bits(idx), gather_bits(idx >> 1))
}

/// Encode a raw coordinate pair as a Morton code (convenience alias used by
/// the quadtree crate, where Morton codes double as cell identifiers).
#[inline]
pub fn encode(x: u32, y: u32) -> u64 {
    morton_index(0, Point2::new(x, y))
}

/// Decode a Morton code back to the coordinate pair.
#[inline]
pub fn decode(code: u64) -> (u32, u32) {
    let p = morton_point(0, code);
    (p.x, p.y)
}

/// The Z-curve (Morton order) of a given order.
///
/// ```
/// use sfc_curves::{Curve2d, ZCurve, Point2};
/// let z = ZCurve::new(1);
/// // Quadrant visit order: LL, LR, UL, UR.
/// assert_eq!(z.point(0), Point2::new(0, 0));
/// assert_eq!(z.point(1), Point2::new(1, 0));
/// assert_eq!(z.point(2), Point2::new(0, 1));
/// assert_eq!(z.point(3), Point2::new(1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZCurve {
    order: u32,
}

impl ZCurve {
    /// Create a Z-curve over a `2^order × 2^order` grid.
    pub fn new(order: u32) -> Self {
        check_order(order);
        ZCurve { order }
    }
}

impl Curve2d for ZCurve {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point2) -> u64 {
        debug_assert!(p.in_grid(self.side()), "{p} outside grid of order {}", self.order);
        morton_index(self.order, p)
    }

    #[inline]
    fn point(&self, idx: u64) -> Point2 {
        debug_assert!(idx < self.len());
        morton_point(self.order, idx)
    }

    fn name(&self) -> &'static str {
        "Z-Curve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_gather_round_trip() {
        for v in [0u32, 1, 2, 0xFF, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(gather_bits(spread_bits(v)), v);
        }
    }

    #[test]
    fn spread_produces_even_bits_only() {
        for v in [1u32, 3, 0xFFFF_FFFF] {
            assert_eq!(spread_bits(v) & 0xAAAA_AAAA_AAAA_AAAA, 0);
        }
    }

    #[test]
    fn order_one_z_shape() {
        let z = ZCurve::new(1);
        let pts: Vec<_> = (0..4).map(|i| z.point(i)).collect();
        assert_eq!(
            pts,
            vec![
                Point2::new(0, 0),
                Point2::new(1, 0),
                Point2::new(0, 1),
                Point2::new(1, 1)
            ]
        );
    }

    #[test]
    fn round_trip_exhaustive_order_4() {
        let z = ZCurve::new(4);
        for idx in 0..z.len() {
            assert_eq!(z.index(z.point(idx)), idx);
        }
    }

    #[test]
    fn quadrant_structure_is_preserved() {
        // The first quarter of the indices covers exactly the lower-left
        // quadrant, i.e. the recursion copies Z_{k} into each quadrant
        // untouched.
        let z = ZCurve::new(3);
        let quarter = z.len() / 4;
        for idx in 0..quarter {
            let p = z.point(idx);
            assert!(p.x < 4 && p.y < 4, "index {idx} -> {p} not in LL quadrant");
        }
        for idx in quarter..2 * quarter {
            let p = z.point(idx);
            assert!(p.x >= 4 && p.y < 4, "index {idx} -> {p} not in LR quadrant");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for (x, y) in [(0, 0), (5, 9), (1023, 4095), (u32::MAX, 0)] {
            assert_eq!(decode(encode(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_code_monotone_in_each_coordinate_block() {
        // Sorting cells of a row of a 2x2 block by Morton code keeps x order.
        assert!(encode(0, 0) < encode(1, 0));
        assert!(encode(1, 0) < encode(0, 1));
        assert!(encode(0, 1) < encode(1, 1));
    }
}
