//! The Moore curve — the *closed* variant of the Hilbert curve.
//!
//! An extension beyond the paper's four curves: the Moore curve visits every
//! cell of the grid in unit steps like the Hilbert curve, but its last cell
//! is adjacent to its first, forming a closed tour. On a **torus** — whose
//! wrap-around links reward cyclic layouts — a closed curve is the natural
//! candidate for processor ranking, so the extension study can ask whether
//! closing the loop buys anything under the ACD metric.
//!
//! Construction: four copies of `H_{k−1}`, the left pair rotated 90° CCW and
//! stacked, the right pair rotated 90° CW, so the exits chain LL → UL → UR →
//! LR → LL.

use crate::hilbert::{hilbert_index, hilbert_point};
use crate::{check_order, Curve2d, Point2};

/// Moore-curve index of `p` on a grid of the given `order`.
pub fn moore_index(order: u32, p: Point2) -> u64 {
    if order == 1 {
        // Base cycle: (0,0) -> (0,1) -> (1,1) -> (1,0).
        return match (p.x, p.y) {
            (0, 0) => 0,
            (0, 1) => 1,
            (1, 1) => 2,
            _ => 3,
        };
    }
    let h = 1u32 << (order - 1);
    let (x, y) = (p.x, p.y);
    let (rank, lx, ly) = match ((x >= h) as u8, (y >= h) as u8) {
        (0, 0) => (0u64, x, y),         // LL, CCW copy
        (0, 1) => (1, x, y - h),        // UL, CCW copy
        (1, 1) => (2, x - h, y - h),    // UR, CW copy
        _ => (3, x - h, y),             // LR, CW copy
    };
    // Invert the quadrant transform to recover Hilbert-space coordinates.
    let (hx, hy) = if rank < 2 {
        // T(x, y) = (h−1−y, x)  ⇒  T⁻¹(X, Y) = (Y, h−1−X)
        (ly, h - 1 - lx)
    } else {
        // T(x, y) = (y, h−1−x)  ⇒  T⁻¹(X, Y) = (h−1−Y, X)
        (h - 1 - ly, lx)
    };
    let quarter = 1u64 << (2 * (order - 1));
    rank * quarter + hilbert_index(order - 1, Point2::new(hx, hy))
}

/// The grid cell at Moore position `idx`.
pub fn moore_point(order: u32, idx: u64) -> Point2 {
    if order == 1 {
        return match idx {
            0 => Point2::new(0, 0),
            1 => Point2::new(0, 1),
            2 => Point2::new(1, 1),
            _ => Point2::new(1, 0),
        };
    }
    let h = 1u32 << (order - 1);
    let quarter = 1u64 << (2 * (order - 1));
    let rank = idx / quarter;
    let sub = hilbert_point(order - 1, idx % quarter);
    let (lx, ly) = if rank < 2 {
        (h - 1 - sub.y, sub.x)
    } else {
        (sub.y, h - 1 - sub.x)
    };
    match rank {
        0 => Point2::new(lx, ly),
        1 => Point2::new(lx, ly + h),
        2 => Point2::new(lx + h, ly + h),
        _ => Point2::new(lx + h, ly),
    }
}

/// The Moore curve of a given order.
///
/// ```
/// use sfc_curves::{Curve2d, moore::MooreCurve};
/// let m = MooreCurve::new(4);
/// // Closed tour: the last cell neighbors the first.
/// let first = m.point(0);
/// let last = m.point(m.len() - 1);
/// assert_eq!(first.manhattan(last), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MooreCurve {
    order: u32,
}

impl MooreCurve {
    /// Create a Moore curve over a `2^order × 2^order` grid.
    pub fn new(order: u32) -> Self {
        check_order(order);
        MooreCurve { order }
    }
}

impl Curve2d for MooreCurve {
    fn order(&self) -> u32 {
        self.order
    }

    #[inline]
    fn index(&self, p: Point2) -> u64 {
        debug_assert!(p.in_grid(self.side()));
        moore_index(self.order, p)
    }

    #[inline]
    fn point(&self, idx: u64) -> Point2 {
        debug_assert!(idx < self.len());
        moore_point(self.order, idx)
    }

    fn name(&self) -> &'static str {
        "Moore Curve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exhaustive_small_orders() {
        for order in 1..=6 {
            let m = MooreCurve::new(order);
            let mut seen = vec![false; m.len() as usize];
            for idx in 0..m.len() {
                let p = m.point(idx);
                assert_eq!(m.index(p), idx, "order {order} idx {idx}");
                let flat = (p.y as u64 * m.side() + p.x as u64) as usize;
                assert!(!seen[flat], "cell {p} visited twice");
                seen[flat] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn unit_steps_everywhere() {
        for order in 1..=6 {
            let m = MooreCurve::new(order);
            for idx in 0..m.len() - 1 {
                assert_eq!(
                    m.point(idx).manhattan(m.point(idx + 1)),
                    1,
                    "order {order} step {idx}"
                );
            }
        }
    }

    #[test]
    fn curve_is_closed() {
        for order in 1..=7 {
            let m = MooreCurve::new(order);
            assert_eq!(
                m.point(0).manhattan(m.point(m.len() - 1)),
                1,
                "order {order} not closed"
            );
        }
    }

    #[test]
    fn quadrant_visit_order() {
        let m = MooreCurve::new(3);
        let quarter = m.len() / 4;
        // First quarter in LL, second in UL, third in UR, fourth in LR.
        for i in 0..quarter {
            let p = m.point(i);
            assert!(p.x < 4 && p.y < 4, "idx {i} -> {p}");
            let p = m.point(i + quarter);
            assert!(p.x < 4 && p.y >= 4);
            let p = m.point(i + 2 * quarter);
            assert!(p.x >= 4 && p.y >= 4);
            let p = m.point(i + 3 * quarter);
            assert!(p.x >= 4 && p.y < 4);
        }
    }

    #[test]
    fn wraparound_distance_on_torus_is_one_everywhere() {
        // The closed property in the form the ACD study uses: consecutive
        // ranks (cyclically) are adjacent, so a ring pattern mapped onto a
        // torus via the Moore curve pays exactly 1 hop per message.
        let order = 4;
        let m = MooreCurve::new(order);
        let len = m.len();
        for idx in 0..len {
            let a = m.point(idx);
            let b = m.point((idx + 1) % len);
            assert_eq!(a.manhattan(b), 1);
        }
    }
}
