//! Literal recursive constructions of the paper's curves.
//!
//! Section II-A of the paper defines each curve by recursion: `H_{k+1}`
//! (resp. `Z_{k+1}`, `G_{k+1}`) consists of four transformed copies of the
//! order-`k` curve arranged in a 2 × 2 grid. The paper notes that direct bit
//! manipulation is more efficient computationally, but the recursive
//! constructions are the *definitions*; this module implements them verbatim
//! and the test suite uses them as executable specifications for the
//! bit-twiddled implementations in the sibling modules.
//!
//! All functions return the full visit sequence (`Vec<Point2>` of length
//! `4^k`), so they are only usable at small orders — exactly their role as
//! reference oracles.

use crate::{CurveKind, Point2};

/// The order-`k` Hilbert curve as an explicit visit sequence, built by the
/// paper's recursion: four copies of `H_{k-1}` with the lower-left copy
/// transposed and the lower-right copy anti-transposed so entry and exit
/// points align.
pub fn hilbert_sequence(order: u32) -> Vec<Point2> {
    assert!((1..=12).contains(&order), "recursive oracle limited to order <= 12");
    fn go(k: u32) -> Vec<Point2> {
        if k == 0 {
            return vec![Point2::new(0, 0)];
        }
        let sub = go(k - 1);
        let h = 1u32 << (k - 1);
        let mut out = Vec::with_capacity(sub.len() * 4);
        // Quadrant 1 (lower-left): transpose.
        out.extend(sub.iter().map(|p| Point2::new(p.y, p.x)));
        // Quadrant 2 (upper-left): identity, shifted up.
        out.extend(sub.iter().map(|p| Point2::new(p.x, p.y + h)));
        // Quadrant 3 (upper-right): identity, shifted up and right.
        out.extend(sub.iter().map(|p| Point2::new(p.x + h, p.y + h)));
        // Quadrant 4 (lower-right): anti-transpose, shifted right.
        out.extend(
            sub.iter()
                .map(|p| Point2::new(h - 1 - p.y + h, h - 1 - p.x)),
        );
        out
    }
    go(order)
}

/// The order-`k` Z-curve as an explicit visit sequence: four untransformed
/// copies of `Z_{k-1}` visited lower-left, lower-right, upper-left,
/// upper-right.
pub fn z_sequence(order: u32) -> Vec<Point2> {
    assert!((1..=12).contains(&order), "recursive oracle limited to order <= 12");
    fn go(k: u32) -> Vec<Point2> {
        if k == 0 {
            return vec![Point2::new(0, 0)];
        }
        let sub = go(k - 1);
        let h = 1u32 << (k - 1);
        let mut out = Vec::with_capacity(sub.len() * 4);
        out.extend(sub.iter().copied());
        out.extend(sub.iter().map(|p| Point2::new(p.x + h, p.y)));
        out.extend(sub.iter().map(|p| Point2::new(p.x, p.y + h)));
        out.extend(sub.iter().map(|p| Point2::new(p.x + h, p.y + h)));
        out
    }
    go(order)
}

/// The order-`k` Gray order as an explicit visit sequence: quadrants visited
/// lower-left, lower-right, upper-right, upper-left (the Gray sequence of
/// the quadrant bits), with the 2nd and 4th copies traversed *in reverse* —
/// the reflection property of the binary reflected Gray code,
/// `gray(M-1-j) = gray(j) ⊕ M/2`. This reversal is what the paper describes
/// as the 180° rotation of the upper copies.
pub fn gray_sequence(order: u32) -> Vec<Point2> {
    assert!((1..=12).contains(&order), "recursive oracle limited to order <= 12");
    fn go(k: u32) -> Vec<Point2> {
        if k == 0 {
            return vec![Point2::new(0, 0)];
        }
        let sub = go(k - 1);
        let h = 1u32 << (k - 1);
        let mut out = Vec::with_capacity(sub.len() * 4);
        // LL: untouched.
        out.extend(sub.iter().copied());
        // LR: reversed.
        out.extend(sub.iter().rev().map(|p| Point2::new(p.x + h, p.y)));
        // UR: untouched.
        out.extend(sub.iter().map(|p| Point2::new(p.x + h, p.y + h)));
        // UL: reversed.
        out.extend(sub.iter().rev().map(|p| Point2::new(p.x, p.y + h)));
        out
    }
    go(order)
}

/// The order-`k` row-major order as an explicit visit sequence.
pub fn row_major_sequence(order: u32) -> Vec<Point2> {
    assert!((1..=12).contains(&order));
    let side = 1u32 << order;
    let mut out = Vec::with_capacity((side as usize) * (side as usize));
    for y in 0..side {
        for x in 0..side {
            out.push(Point2::new(x, y));
        }
    }
    out
}

/// The reference sequence for any of the paper's four curves.
pub fn reference_sequence(kind: CurveKind, order: u32) -> Option<Vec<Point2>> {
    match kind {
        CurveKind::Hilbert => Some(hilbert_sequence(order)),
        CurveKind::ZCurve => Some(z_sequence(order)),
        CurveKind::Gray => Some(gray_sequence(order)),
        CurveKind::RowMajor => Some(row_major_sequence(order)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_bit_twiddled(kind: CurveKind, max_order: u32) {
        for order in 1..=max_order {
            let seq = reference_sequence(kind, order).unwrap();
            let curve = kind.curve(order);
            assert_eq!(seq.len() as u64, curve.len());
            for (idx, &p) in seq.iter().enumerate() {
                assert_eq!(
                    curve.point(idx as u64),
                    p,
                    "{kind} order {order}: index {idx}"
                );
                assert_eq!(curve.index(p), idx as u64);
            }
        }
    }

    #[test]
    fn hilbert_recursion_matches_bit_twiddled() {
        check_against_bit_twiddled(CurveKind::Hilbert, 7);
    }

    #[test]
    fn z_recursion_matches_bit_twiddled() {
        check_against_bit_twiddled(CurveKind::ZCurve, 7);
    }

    #[test]
    fn gray_recursion_matches_bit_twiddled() {
        check_against_bit_twiddled(CurveKind::Gray, 7);
    }

    #[test]
    fn row_major_matches_bit_twiddled() {
        check_against_bit_twiddled(CurveKind::RowMajor, 7);
    }

    #[test]
    fn extension_curves_have_no_recursive_oracle() {
        assert!(reference_sequence(CurveKind::Boustrophedon, 2).is_none());
        assert!(reference_sequence(CurveKind::ColumnMajor, 2).is_none());
    }

    #[test]
    fn hilbert_sequence_entry_and_exit() {
        // H_k enters at the origin and exits at the lower-right corner; the
        // recursion preserves this at every order.
        for order in 1..=6 {
            let seq = hilbert_sequence(order);
            let side = 1u32 << order;
            assert_eq!(seq[0], Point2::new(0, 0));
            assert_eq!(*seq.last().unwrap(), Point2::new(side - 1, 0));
        }
    }
}
