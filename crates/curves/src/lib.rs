//! # sfc-curves
//!
//! Discrete space-filling curves (SFCs) on `2^k × 2^k` grids (and `2^k`-sided
//! cubes in 3-D), as studied in *DeFord & Kalyanaraman, "Empirical Analysis of
//! Space-Filling Curves for Scientific Computing Applications", ICPP 2013*.
//!
//! An SFC of order `k` is a bijection between the `4^k` cells of a
//! `2^k × 2^k` grid and the linear index range `0 .. 4^k`. The paper studies
//! four curves — the Hilbert curve, the Z-curve (Morton order), the Gray
//! order, and the row-major order — used both for *particle ordering* (laying
//! out input points in memory / across processors) and *processor ordering*
//! (assigning ranks to nodes of a mesh or torus network).
//!
//! ## Contents
//!
//! - [`Curve2d`]: the core trait — `index(point) -> u64` and its inverse
//!   `point(index)`.
//! - [`hilbert`], [`morton`], [`gray`], [`rowmajor`]: the paper's four
//!   curves, plus column-major and boustrophedon ("snake scan") variants.
//! - [`skilling`]: Skilling's n-dimensional Hilbert transform, used both as
//!   an independent cross-check of the 2-D Hilbert implementation and as the
//!   3-D Hilbert curve for the paper's future-work extension.
//! - [`curve3d`]: 3-D curves (Morton, Gray, row-major, Hilbert via
//!   Skilling).
//! - [`recursive`]: reference constructions that build each curve by literal
//!   recursion, exactly as defined in Section II of the paper. These are
//!   slower but serve as executable specifications for the bit-twiddled
//!   versions.
//! - [`table`]: precomputed permutation tables (index→point and point→index)
//!   for hot loops that sweep entire grids.
//!
//! ## Example
//!
//! ```
//! use sfc_curves::{Curve2d, CurveKind, Point2};
//!
//! let hilbert = CurveKind::Hilbert.curve(4); // order 4 => 16×16 grid
//! let idx = hilbert.index(Point2::new(3, 7));
//! assert_eq!(hilbert.point(idx), Point2::new(3, 7));
//! // The Hilbert curve takes unit steps:
//! let a = hilbert.point(100);
//! let b = hilbert.point(101);
//! assert_eq!(a.manhattan(b), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod curve3d;
pub mod gray;
pub mod hilbert;
pub mod moore;
pub mod peano;
pub mod morton;
pub mod point;
pub mod recursive;
pub mod rowmajor;
pub mod skilling;
pub mod table;

pub use any::AnyCurve2d;
pub use gray::GrayCurve;
pub use hilbert::HilbertCurve;
pub use moore::MooreCurve;
pub use peano::PeanoCurve;
pub use morton::ZCurve;
pub use point::Point2;
pub use rowmajor::{Boustrophedon, ColumnMajor, RowMajor};
pub use table::CurveTable;

/// Maximum supported order for 2-D curves. `4^31` indices fit comfortably in
/// a `u64` and coordinates fit in a `u32`.
pub const MAX_ORDER_2D: u32 = 31;

/// A discrete two-dimensional space-filling curve of a fixed order `k`,
/// i.e. a bijection between the cells of a `2^k × 2^k` grid and
/// `0 .. 4^k`.
pub trait Curve2d {
    /// The order `k` of the curve. The grid has side `2^k`.
    fn order(&self) -> u32;

    /// Linear index of the grid cell `p`. Both coordinates must be
    /// `< self.side()`.
    fn index(&self, p: Point2) -> u64;

    /// Inverse of [`Curve2d::index`]: the grid cell at linear position
    /// `idx`, which must be `< self.len()`.
    fn point(&self, idx: u64) -> Point2;

    /// Side length of the grid, `2^k`.
    fn side(&self) -> u64 {
        1u64 << self.order()
    }

    /// Total number of cells, `4^k`.
    fn len(&self) -> u64 {
        1u64 << (2 * self.order())
    }

    /// Whether the curve covers no cells (never true for valid orders; kept
    /// for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A human-readable name for reports and tables.
    fn name(&self) -> &'static str {
        "curve"
    }
}

/// Iterator over the cells of a grid in curve order. Created by
/// [`traverse`].
#[derive(Debug, Clone)]
pub struct CurveIter<'a, C: Curve2d + ?Sized> {
    curve: &'a C,
    next: u64,
    len: u64,
}

/// Iterate the cells of `curve`'s grid in curve order.
pub fn traverse<C: Curve2d + ?Sized>(curve: &C) -> CurveIter<'_, C> {
    CurveIter {
        curve,
        next: 0,
        len: curve.len(),
    }
}

impl<C: Curve2d + ?Sized> Iterator for CurveIter<'_, C> {
    type Item = Point2;

    fn next(&mut self) -> Option<Point2> {
        if self.next >= self.len {
            return None;
        }
        let p = self.curve.point(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<C: Curve2d + ?Sized> ExactSizeIterator for CurveIter<'_, C> {}

/// Identifies one of the supported 2-D curves; the dynamic counterpart of the
/// concrete curve types, used wherever experiments sweep over curve families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CurveKind {
    /// The Hilbert curve ([`HilbertCurve`]).
    Hilbert,
    /// The Z-curve / Morton order ([`ZCurve`]).
    ZCurve,
    /// The Gray order ([`GrayCurve`]).
    Gray,
    /// Row-major order ([`RowMajor`]).
    RowMajor,
    /// Column-major order ([`ColumnMajor`]); transpose of row-major.
    ColumnMajor,
    /// Boustrophedon ("snake scan") order ([`Boustrophedon`]), the discrete
    /// analog of the continuous snake curve discussed by Xu & Tirthapura.
    Boustrophedon,
    /// Moore curve ([`MooreCurve`]): the closed Hilbert variant, whose last
    /// cell is adjacent to its first.
    Moore,
}

impl CurveKind {
    /// The four curves evaluated in the paper, in the paper's column order.
    pub const PAPER: [CurveKind; 4] = [
        CurveKind::Hilbert,
        CurveKind::ZCurve,
        CurveKind::Gray,
        CurveKind::RowMajor,
    ];

    /// All supported curves, the paper's four plus the extensions.
    pub const ALL: [CurveKind; 7] = [
        CurveKind::Hilbert,
        CurveKind::ZCurve,
        CurveKind::Gray,
        CurveKind::RowMajor,
        CurveKind::ColumnMajor,
        CurveKind::Boustrophedon,
        CurveKind::Moore,
    ];

    /// Instantiate the curve at order `k` by value: a `Copy`, allocation-free
    /// handle for hot loops and serializable experiment specs.
    #[inline]
    pub fn any(self, order: u32) -> AnyCurve2d {
        AnyCurve2d::new(self, order)
    }

    /// Instantiate the curve at order `k` behind a trait object.
    ///
    /// Compatibility path for heterogeneous collections; delegates to
    /// [`CurveKind::any`], so both APIs always agree. Prefer `any` where a
    /// concrete handle suffices — it avoids the allocation and vtable.
    pub fn curve(self, order: u32) -> Box<dyn Curve2d + Send + Sync> {
        Box::new(self.any(order))
    }

    /// Display name used in tables and plots.
    pub fn name(self) -> &'static str {
        match self {
            CurveKind::Hilbert => "Hilbert Curve",
            CurveKind::ZCurve => "Z-Curve",
            CurveKind::Gray => "Gray Code",
            CurveKind::RowMajor => "Row Major",
            CurveKind::ColumnMajor => "Column Major",
            CurveKind::Boustrophedon => "Snake Scan",
            CurveKind::Moore => "Moore Curve",
        }
    }

    /// Short name for compact tables.
    pub fn short_name(self) -> &'static str {
        match self {
            CurveKind::Hilbert => "Hilbert",
            CurveKind::ZCurve => "Z",
            CurveKind::Gray => "Gray",
            CurveKind::RowMajor => "RowMajor",
            CurveKind::ColumnMajor => "ColMajor",
            CurveKind::Boustrophedon => "Snake",
            CurveKind::Moore => "Moore",
        }
    }

    /// Compute the linear index of `p` without constructing a curve object.
    #[inline]
    pub fn index_of(self, order: u32, p: Point2) -> u64 {
        match self {
            CurveKind::Hilbert => hilbert::hilbert_index(order, p),
            CurveKind::ZCurve => morton::morton_index(order, p),
            CurveKind::Gray => gray::gray_index(order, p),
            CurveKind::RowMajor => rowmajor::row_major_index(order, p),
            CurveKind::ColumnMajor => rowmajor::column_major_index(order, p),
            CurveKind::Boustrophedon => rowmajor::boustrophedon_index(order, p),
            CurveKind::Moore => moore::moore_index(order, p),
        }
    }

    /// Compute the grid cell at linear position `idx` without constructing a
    /// curve object.
    #[inline]
    pub fn point_of(self, order: u32, idx: u64) -> Point2 {
        match self {
            CurveKind::Hilbert => hilbert::hilbert_point(order, idx),
            CurveKind::ZCurve => morton::morton_point(order, idx),
            CurveKind::Gray => gray::gray_point(order, idx),
            CurveKind::RowMajor => rowmajor::row_major_point(order, idx),
            CurveKind::ColumnMajor => rowmajor::column_major_point(order, idx),
            CurveKind::Boustrophedon => rowmajor::boustrophedon_point(order, idx),
            CurveKind::Moore => moore::moore_point(order, idx),
        }
    }

    /// Parse a curve name as used on the bench binaries' command lines.
    pub fn parse(s: &str) -> Option<CurveKind> {
        match s.to_ascii_lowercase().as_str() {
            "hilbert" | "h" => Some(CurveKind::Hilbert),
            "z" | "zcurve" | "z-curve" | "morton" => Some(CurveKind::ZCurve),
            "gray" | "g" | "graycode" => Some(CurveKind::Gray),
            "rowmajor" | "row" | "row-major" | "r" => Some(CurveKind::RowMajor),
            "colmajor" | "column" | "column-major" | "c" => Some(CurveKind::ColumnMajor),
            "snake" | "boustrophedon" | "s" => Some(CurveKind::Boustrophedon),
            "moore" | "m" => Some(CurveKind::Moore),
            _ => None,
        }
    }
}

impl std::fmt::Display for CurveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Validates that `order` is within the supported range and panics with a
/// clear message otherwise. All curve constructors call this.
pub(crate) fn check_order(order: u32) {
    assert!(
        (1..=MAX_ORDER_2D).contains(&order),
        "curve order must be in 1..={MAX_ORDER_2D}, got {order}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_kind_parse_round_trips() {
        for kind in CurveKind::ALL {
            assert_eq!(CurveKind::parse(kind.short_name()), Some(kind));
        }
        assert_eq!(CurveKind::parse("no-such-curve"), None);
    }

    #[test]
    fn boxed_curves_agree_with_direct_functions() {
        for kind in CurveKind::ALL {
            let c = kind.curve(3);
            for idx in 0..c.len() {
                let p = c.point(idx);
                assert_eq!(kind.point_of(3, idx), p);
                assert_eq!(kind.index_of(3, p), idx);
                assert_eq!(c.index(p), idx);
            }
        }
    }

    #[test]
    fn traverse_visits_every_cell_once() {
        for kind in CurveKind::ALL {
            let c = kind.curve(3);
            let mut seen = vec![false; c.len() as usize];
            let mut count = 0usize;
            for p in traverse(c.as_ref()) {
                let flat = (p.y as usize) * c.side() as usize + p.x as usize;
                assert!(!seen[flat], "{kind}: cell {p:?} visited twice");
                seen[flat] = true;
                count += 1;
            }
            assert_eq!(count, c.len() as usize);
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn traverse_size_hint_is_exact() {
        let c = HilbertCurve::new(2);
        let it = traverse(&c);
        assert_eq!(it.len(), 16);
        assert_eq!(it.count(), 16);
    }

    #[test]
    fn paper_set_is_subset_of_all() {
        for kind in CurveKind::PAPER {
            assert!(CurveKind::ALL.contains(&kind));
        }
    }

    #[test]
    #[should_panic(expected = "curve order must be")]
    fn order_zero_rejected() {
        let _ = HilbertCurve::new(0);
    }
}
