//! Property-based tests for the curve implementations.

use proptest::prelude::*;
use sfc_curves::curve3d::{Curve3dKind, Point3};
use sfc_curves::gray::{gray_decode, gray_encode};
use sfc_curves::morton::{gather_bits, spread_bits};
use sfc_curves::{skilling, CurveKind, Point2};

proptest! {
    /// Every curve is a bijection: index(point(i)) == i at arbitrary orders
    /// and positions.
    #[test]
    fn index_point_round_trip(
        order in 1u32..=16,
        kind_idx in 0usize..CurveKind::ALL.len(),
        raw in any::<u64>(),
    ) {
        let kind = CurveKind::ALL[kind_idx];
        let len = 1u64 << (2 * order);
        let idx = raw % len;
        let p = kind.point_of(order, idx);
        prop_assert!(p.in_grid(1u64 << order));
        prop_assert_eq!(kind.index_of(order, p), idx);
    }

    /// point(index(p)) == p for arbitrary in-grid points.
    #[test]
    fn point_index_round_trip(
        order in 1u32..=16,
        kind_idx in 0usize..CurveKind::ALL.len(),
        rx in any::<u32>(),
        ry in any::<u32>(),
    ) {
        let kind = CurveKind::ALL[kind_idx];
        let side = 1u32 << order;
        let p = Point2::new(rx % side, ry % side);
        prop_assert_eq!(kind.point_of(order, kind.index_of(order, p)), p);
    }

    /// Hilbert and boustrophedon curves take unit Manhattan steps everywhere.
    #[test]
    fn unit_step_curves(order in 1u32..=12, raw in any::<u64>()) {
        for kind in [CurveKind::Hilbert, CurveKind::Boustrophedon, CurveKind::Moore] {
            let len = 1u64 << (2 * order);
            let idx = raw % (len - 1);
            let a = kind.point_of(order, idx);
            let b = kind.point_of(order, idx + 1);
            prop_assert_eq!(a.manhattan(b), 1, "{} at {}", kind, idx);
        }
    }

    /// Consecutive Gray-order cells differ by a power-of-two step along a
    /// single axis (single Morton bit flip).
    #[test]
    fn gray_single_axis_steps(order in 1u32..=12, raw in any::<u64>()) {
        let len = 1u64 << (2 * order);
        let idx = raw % (len - 1);
        let a = CurveKind::Gray.point_of(order, idx);
        let b = CurveKind::Gray.point_of(order, idx + 1);
        prop_assert!(a.x == b.x || a.y == b.y);
        let step = a.x.abs_diff(b.x).max(a.y.abs_diff(b.y));
        prop_assert!(step.is_power_of_two());
    }

    /// Gray encode/decode are inverse on the full u64 range.
    #[test]
    fn gray_code_round_trip(v in any::<u64>()) {
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
        prop_assert_eq!(gray_encode(gray_decode(v)), v);
    }

    /// Adjacent integers have Gray codes differing in exactly one bit.
    #[test]
    fn gray_adjacency(v in 0u64..u64::MAX) {
        prop_assert_eq!((gray_encode(v) ^ gray_encode(v + 1)).count_ones(), 1);
    }

    /// Morton bit spreading round-trips on the full u32 range.
    #[test]
    fn morton_spread_round_trip(v in any::<u32>()) {
        prop_assert_eq!(gather_bits(spread_bits(v)), v);
    }

    /// The Z-curve index is monotone in the "is an ancestor quadrant"
    /// ordering: a point's index lies within its quadrant's index range at
    /// every level.
    #[test]
    fn z_curve_quadrant_containment(
        order in 2u32..=16,
        rx in any::<u32>(),
        ry in any::<u32>(),
        level in 1u32..=8,
    ) {
        let level = level.min(order);
        let side = 1u32 << order;
        let p = Point2::new(rx % side, ry % side);
        let idx = CurveKind::ZCurve.index_of(order, p);
        // Cell of p at `level` levels below the root.
        let shift = order - level;
        let (cx, cy) = (p.x >> shift, p.y >> shift);
        let cell_code = CurveKind::ZCurve.index_of(level, Point2::new(cx, cy));
        // All descendants of that cell occupy one contiguous Z-index block.
        let block = 1u64 << (2 * shift);
        prop_assert!(idx >= cell_code * block && idx < (cell_code + 1) * block);
    }

    /// Skilling's transform round-trips in 2-D and 3-D.
    #[test]
    fn skilling_round_trip(bits in 1u32..=10, raw in any::<u64>()) {
        let len2 = 1u64 << (2 * bits);
        let idx = raw % len2;
        let axes = skilling::index_to_axes(idx, bits, 2);
        prop_assert_eq!(skilling::axes_to_index(&axes, bits), idx);

        let len3 = 1u64 << (3 * bits.min(10));
        let idx3 = raw % len3;
        let axes3 = skilling::index_to_axes(idx3, bits.min(10), 3);
        prop_assert_eq!(skilling::axes_to_index(&axes3, bits.min(10)), idx3);
    }

    /// 3-D curves are bijections at arbitrary positions.
    #[test]
    fn curve3d_round_trip(
        order in 1u32..=8,
        kind_idx in 0usize..Curve3dKind::ALL.len(),
        raw in any::<u64>(),
    ) {
        let kind = Curve3dKind::ALL[kind_idx];
        let c = kind.curve(order);
        let idx = raw % c.len();
        let p = c.point(idx);
        prop_assert_eq!(c.index(p), idx);
    }

    /// 3-D Hilbert takes unit steps.
    #[test]
    fn hilbert3d_unit_steps(order in 1u32..=6, raw in any::<u64>()) {
        let c = Curve3dKind::Hilbert.curve(order);
        let idx = raw % (c.len() - 1);
        let a = c.point(idx);
        let b = c.point(idx + 1);
        prop_assert_eq!(a.manhattan(b), 1);
    }

    /// The paper's locality intuition in miniature: for the Hilbert curve,
    /// cells in the same quadrant at any level occupy one contiguous index
    /// block (recursive curves never leave a quadrant once entered).
    #[test]
    fn hilbert_quadrant_contiguity(
        order in 2u32..=12,
        raw in any::<u64>(),
        level in 1u32..=6,
    ) {
        let level = level.min(order);
        let len = 1u64 << (2 * order);
        let idx = raw % len;
        let shift = order - level;
        let block = 1u64 << (2 * shift);
        let p = CurveKind::Hilbert.point_of(order, idx);
        // Every other index in the same block maps into the same cell.
        let start = (idx / block) * block;
        for probe in [start, start + block / 2, start + block - 1] {
            let q = CurveKind::Hilbert.point_of(order, probe);
            prop_assert_eq!(q.x >> shift, p.x >> shift);
            prop_assert_eq!(q.y >> shift, p.y >> shift);
        }
    }

    /// Point3 metrics satisfy basic axioms.
    #[test]
    fn point3_metric_axioms(
        ax in 0u32..1000, ay in 0u32..1000, az in 0u32..1000,
        bx in 0u32..1000, by in 0u32..1000, bz in 0u32..1000,
    ) {
        let a = Point3::new(ax, ay, az);
        let b = Point3::new(bx, by, bz);
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert!(a.chebyshev(b) <= a.manhattan(b));
        prop_assert_eq!(a.manhattan(a), 0);
    }
}
