//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it depends on. This crate keeps the
//! `criterion_group!`/`criterion_main!` bench harness compiling and
//! runnable: each benchmark is timed with [`std::time::Instant`] over a
//! fixed number of timed iterations after a short warm-up, and a
//! median-of-samples estimate is printed per benchmark. It produces no
//! HTML reports and does no statistical outlier analysis — it exists so
//! `cargo bench` exercises the same code paths and gives a usable
//! order-of-magnitude timing, offline.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under a string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples after
    /// one warm-up call. The routine's output is passed through
    /// [`black_box`] so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples (b.iter was not called)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    println!(
        "  {id}: median {median:?} over {} samples (total {total:?})",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion_group!`. Only the simple `(name, fn, ...)` form is
/// supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the named groups, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| {
                seen = x;
                x * x
            })
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("hilbert").to_string(), "hilbert");
    }
}
