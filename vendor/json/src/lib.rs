//! Offline stand-in for the subset of the `serde_json` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it depends on. This crate provides a
//! self-contained JSON tree ([`Value`]), the [`json!`] literal macro, the
//! [`to_string`]/[`to_string_pretty`] serializers and the [`from_str`]
//! parser — enough for the result envelopes and the sweep journal, with the
//! same names the repo already imports.
//!
//! Guarantees the sweep harness relies on:
//!
//! - serialization is deterministic (object keys keep insertion order);
//! - `f64` values round-trip exactly through serialize → parse (shortest
//!   round-trip formatting, as produced by Rust's `Display` for floats);
//! - numbers compare by numeric value, so `1` parsed back from a
//!   serialized `1.0` still equals the original.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered.
    Object(Map),
}

/// A JSON number: integer-valued numbers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Number {
    /// The numeric value as an `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            // Cross-variant: compare numerically, so a float that
            // serialized as an integer literal still compares equal after a
            // round trip.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string → [`Value`] map.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Insert or replace a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Remove a key, returning its value if it was present. Later entries
    /// keep their relative order.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl PartialEq for Map {
    /// Key-set equality, independent of insertion order (matching the
    /// sorted-map semantics of the crate this stands in for).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Value {
    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object contents, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Field access; yields `Null` for missing keys or non-objects, like
    /// the crate this stands in for.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// --- conversions -----------------------------------------------------------

/// Borrowing conversion into a [`Value`]; what the [`json!`] macro uses for
/// interpolated expressions (so interpolating `vec[i]` does not move).
pub trait ToJson {
    /// Build the JSON value representing `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_to_json_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_to_json_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_to_json_float {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
    )*};
}
impl_to_json_float!(f32, f64);

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Keys are string literals;
/// values are arbitrary expressions, interpolated by reference through
/// [`ToJson`] (so `json!({"row": rows[i]})` does not move out of `rows`).
/// Nest literals with explicit inner `json!` calls:
/// `json!({"outer": json!({"inner": 1})})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(
            [$(($key.to_string(), $crate::json!($val))),*]
                .into_iter()
                .collect::<$crate::Map>()
        )
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::json!($elem)),*])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

// --- serialization ---------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // Rust's Display for f64 is the shortest string that parses
            // back to the same bits, so serialize → parse is lossless.
            let text = v.to_string();
            let is_int_syntax = !text.contains(['.', 'e', 'E']);
            out.push_str(&text);
            if is_int_syntax {
                // Keep float-typed values float-typed (and -0.0 signed)
                // across a round trip: "-0" or "5" would re-parse as an
                // integer.
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; mirror the null-ing behavior of the
        // crate this stands in for.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

// --- parsing ---------------------------------------------------------------

/// A parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input, when parsing.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Parse a JSON document. The target type is always [`Value`] here; the
/// generic parameter only mirrors the signature call sites expect.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    T::from_json_str(s)
}

/// Types parseable by [`from_str`].
pub trait FromJson: Sized {
    /// Parse from a JSON document.
    fn from_json_str(s: &str) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_str(s: &str) -> Result<Self, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's serializer; reject rather than
                            // mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let num = if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                Number::PosInt(v)
            } else if let Ok(v) = text.parse::<i64>() {
                Number::NegInt(v)
            } else {
                Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
            }
        } else {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(num))
    }
}

// --- comparisons against plain Rust values ---------------------------------

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_number {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_f64() == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}
impl_eq_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_macro_shapes() {
        let v = json!({
            "name": "x",
            "n": 3,
            "mean": 1.5,
            "flags": json!([true, false, Value::Null]),
            "nested": json!({ "a": json!([1, 2]) }),
        });
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"], 3);
        assert_eq!(v["mean"], 1.5);
        assert_eq!(v["flags"][0], true);
        assert!(v["flags"][2].is_null());
        assert_eq!(v["nested"]["a"].as_array().unwrap().len(), 2);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn interpolation_borrows() {
        let rows = vec![vec![1.0f64, 2.0], vec![3.0, 4.0]];
        // Interpolating an indexed vec must not move out of it.
        let v = json!({ "row": rows[1], "all": rows });
        assert_eq!(v["row"][0], 3.0);
        assert_eq!(v["all"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "s": "he said \"hi\"\n",
            "big": 18446744073709551615u64,
            "neg": -42,
            "f": 0.1,
            "tiny": 1e-300,
            "arr": json!([Vec::<f64>::new(), vec![9.0], Vec::<bool>::new()]),
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "round trip through {text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123_456_789.123_456_78,
            -0.0,
            2.0f64.powi(60),
        ] {
            let v = json!({ "f": f });
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            let got = back["f"].as_f64().unwrap();
            assert_eq!(got.to_bits(), f.to_bits(), "{f} -> {got}");
        }
    }

    #[test]
    fn integer_float_cross_equality() {
        let int: Value = from_str("1").unwrap();
        let float = json!(1.0);
        assert_eq!(int, float);
    }

    #[test]
    fn object_equality_ignores_order() {
        let a: Value = from_str(r#"{"x": 1, "y": 2}"#).unwrap();
        let b: Value = from_str(r#"{"y": 2, "x": 1}"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "1.2.3", "\"unterminated", "{]}", "1 2"] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = json!({ "b": 1, "a": json!([2, json!({"z": 3, "y": 4})]) });
        assert_eq!(to_string(&v).unwrap(), to_string(&v.clone()).unwrap());
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"b":1,"a":[2,{"z":3,"y":4}]}"#
        );
    }
}
