//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it depends on. This crate mirrors the
//! `par_iter`/`into_par_iter` adapter names but executes **sequentially**:
//! every kernel in the workspace is written so its reduction is
//! order-independent, which makes a sequential stand-in observationally
//! identical (and bit-identical for the integer reductions) to a parallel
//! run — only wall-clock differs. Swapping real rayon back in is a
//! one-line change in the workspace manifest.

/// The adapter entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// exposing rayon's method names.
pub struct ParIter<I> {
    inner: I,
}

/// Conversion by value, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Wrap into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type SeqIter = C::IntoIter;
    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion by reference, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: 'a;
    /// Underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Wrap `&self` into a [`ParIter`].
    fn par_iter(&'a self) -> ParIter<Self::SeqIter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type SeqIter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> ParIter<Self::SeqIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<I: Iterator> ParIter<I> {
    /// Map each element.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Keep elements matching a predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Map each element to an iterator and flatten.
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    /// Rayon's `fold`: produce per-chunk accumulators (a single chunk
    /// here), yielding an iterator of accumulators to `reduce`.
    pub fn fold<T, ID: Fn() -> T, F: FnMut(T, I::Item) -> T>(
        self,
        identity: ID,
        fold_op: F,
    ) -> ParIter<std::iter::Once<T>> {
        ParIter {
            inner: std::iter::once(self.inner.fold(identity(), fold_op)),
        }
    }

    /// Rayon's `reduce`: combine all elements starting from `identity()`.
    pub fn reduce<ID: Fn() -> I::Item, F: FnMut(I::Item, I::Item) -> I::Item>(
        self,
        identity: ID,
        reduce_op: F,
    ) -> I::Item {
        self.inner.fold(identity(), reduce_op)
    }

    /// Sum the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Run a side effect per element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Largest element by a comparison key.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        compare: F,
    ) -> Option<I::Item> {
        self.inner.max_by(compare)
    }

    /// Smallest element by a comparison key.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        compare: F,
    ) -> Option<I::Item> {
        self.inner.min_by(compare)
    }
}

/// No-op thread pool configuration, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] /
/// [`ThreadPoolBuilder::build_global`]. Like real rayon, a second
/// `build_global` call reports that the global pool is already initialized.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    already_initialized: bool,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.already_initialized {
            f.write_str("the global thread pool has already been initialized")
        } else {
            f.write_str("thread pool build error (unreachable in the sequential stand-in)")
        }
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configured size of the global pool: 0 while uninitialized, the
/// `num_threads` of the first successful `build_global` afterwards (with
/// rayon's convention that a requested 0 means "all cores").
static GLOBAL_POOL_THREADS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the requested size. Execution stays sequential, but the size
    /// is observable via [`current_num_threads`] after
    /// [`ThreadPoolBuilder::build_global`], mirroring how callers size one
    /// shared pool for the whole process.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Build a (sequential) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }

    /// Install the global pool. Like real rayon this succeeds exactly once
    /// per process; later calls return an error and leave the first
    /// configuration in effect, so harnesses must treat a failure here as
    /// "already sized" rather than fatal.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        match GLOBAL_POOL_THREADS.compare_exchange(
            0,
            requested,
            std::sync::atomic::Ordering::SeqCst,
            std::sync::atomic::Ordering::SeqCst,
        ) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError {
                already_initialized: true,
            }),
        }
    }
}

/// A handle mirroring `rayon::ThreadPool`; runs closures on the calling
/// thread.
pub struct ThreadPool;

impl ThreadPool {
    /// Run `op` "inside" the pool (directly, here).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }
}

/// The configured size of the global pool (1 until `build_global` runs —
/// the stand-in always *executes* on the calling thread, but reporting the
/// configured size lets harnesses verify that kernels share one pool sized
/// off `--jobs` instead of each spawning their own).
pub fn current_num_threads() -> usize {
    match GLOBAL_POOL_THREADS.load(std::sync::atomic::Ordering::SeqCst) {
        0 => 1,
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let sum: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(sum, 9900);
        let (a, b) = v
            .par_iter()
            .map(|&x| (x, x))
            .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1.max(y.1)));
        assert_eq!((a, b), (4950, 99));
    }

    #[test]
    fn fold_then_reduce() {
        let total = (0u64..10)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn enumerate_filter_collect() {
        let v = vec!["a", "b", "c", "d"];
        let picked: Vec<(usize, &&str)> = v
            .par_iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .collect();
        assert_eq!(picked.len(), 2);
        assert_eq!(*picked[1].1, "c");
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn build_global_succeeds_once_and_fixes_the_size() {
        // Single test process-wide touching the global pool (tests in this
        // crate run in one process, so only this test may call
        // build_global).
        let first = super::ThreadPoolBuilder::new().num_threads(3).build_global();
        assert!(first.is_ok());
        assert_eq!(super::current_num_threads(), 3);
        // A second installation fails like real rayon and leaves the first
        // configuration in effect.
        let second = super::ThreadPoolBuilder::new().num_threads(9).build_global();
        let err = second.unwrap_err();
        assert!(err.to_string().contains("already been initialized"));
        assert_eq!(super::current_num_threads(), 3);
    }
}
