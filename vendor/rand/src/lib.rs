//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it depends on. This crate mirrors the
//! `rand 0.8` names the repo calls — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`] and [`Rng::gen_range`] — on top of a xoshiro256++ generator
//! seeded via SplitMix64. Streams are deterministic per seed and portable
//! across platforms, which is all the experiments require; they are **not**
//! the same streams upstream `rand` would produce.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a fair boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection, bias-free.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span <= 2^64 for all supported primitive ranges.
    let span64 = span as u64;
    if span64.is_power_of_two() {
        return (rng.next_u64() & (span64 - 1)) as u128;
    }
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded with
    /// SplitMix64. Fast, high-quality, and fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; never yields the all-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn float_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let sum: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
