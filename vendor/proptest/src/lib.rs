//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it depends on. This crate keeps the
//! shape of `proptest` — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_filter`, range/tuple strategies, [`any`], and
//! `prop::collection::vec` — but runs each property over a fixed number of
//! deterministically generated cases (seeded from the test's name) instead
//! of doing adaptive generation and shrinking. Failures print the generated
//! inputs; reproduce by running the same test again (generation is
//! deterministic, so every run exercises the same cases).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test's module path).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, so distinct tests get distinct streams.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a property test runs; see [`prelude::ProptestConfig`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The upstream default is 256; 96 keeps the heavier numeric
        // properties fast while still exploring widely.
        ProptestConfig { cases: 96 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Reject generated values failing a predicate (regenerating up to a
    /// bounded number of times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The full-range strategy for a type; see [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy generating any value of `T` (integers over their whole range,
/// `f64` in `[0, 1)`, fair booleans).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T, const N: usize> Strategy for Any<[T; N]>
where
    Any<T>: Strategy<Value = T>,
{
    type Value = [T; N];
    fn generate(&self, rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| any::<T>().generate(rng))
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert inside a property, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property, reporting the generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold. Upstream
/// proptest rejects and regenerates; here the case body simply returns
/// early, which is equivalent for deterministic generators.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                // Render the inputs up front: the body may move them, and
                // they are only printed if the case fails.
                let mut inputs = String::new();
                $(inputs.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), $arg
                ));)+
                // Bodies may `return Ok(())` early or fail with `Err`,
                // mirroring upstream proptest's Result-valued test bodies.
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        }
                    )
                );
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => {
                        panic!(
                            "proptest case {} of {} failed in `{}`: {}\nwith inputs:\n{}",
                            case + 1, config.cases, stringify!($name), msg, inputs,
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest case {} of {} failed in `{}` with inputs:\n{}",
                            case + 1, config.cases, stringify!($name), inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig,
        Strategy,
    };

    /// The `prop` module alias used as `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Tuples and maps compose.
        #[test]
        fn mapped_tuples(pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_honored(_x in any::<u64>()) {
            // Counting via a thread-local would be overkill; the case count
            // is exercised by the loop bound itself.
            prop_assert!(true);
        }
    }

    #[test]
    fn filtered_vecs_hold_invariant() {
        use crate::collection;
        let strat = collection::vec(any::<u32>(), 0..20)
            .prop_filter("nonempty", |v| !v.is_empty());
        let mut rng = crate::TestRng::from_name("filtered_vecs");
        for _ in 0..50 {
            assert!(!strat.generate(&mut rng).is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, any::<bool>());
        let mut a = crate::TestRng::from_name("det");
        let mut b = crate::TestRng::from_name("det");
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
