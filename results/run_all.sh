#!/bin/bash
set -x
T=target/release
$T/fig5 > results/fig5.txt 2>&1
$T/table1 --scale 0 --trials 3 > results/table1.txt 2>&1
$T/table2 --scale 0 --trials 3 > results/table2.txt 2>&1
$T/fig6 --scale 0 --trials 2 > results/fig6.txt 2>&1
$T/fig7 --scale 0 --trials 2 > results/fig7.txt 2>&1
$T/parametric --scale 1 --trials 2 > results/parametric.txt 2>&1
echo ALL_DONE > results/STATUS
